package angstrom

import (
	"fmt"
	"math"

	"angstrom/internal/actuator"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

// Tile is one core's observation state: the memory-mapped counter file,
// event probes with their hardware queue, the fine-grained sensors of
// §4.1, and the attached partner core of §4.3.
type Tile struct {
	Counters *CounterFile
	Probes   *ProbeSet
	Queue    *EventQueue
	Thermal  *Thermal
	Voltage  VoltageSensor
	Partner  *PartnerCore
}

// Chip is the closed-loop Angstrom instance: a configuration, per-tile
// observation state, chip-level energy accounting, and an attached
// application whose heartbeats it emits as simulated time advances.
type Chip struct {
	p     Params
	cfg   Config
	clock *sim.Clock

	Tiles  []*Tile
	Energy *EnergySensor
	Batt   *Battery // optional

	inst      *workload.Instance
	mon       *heartbeat.Monitor
	beat      uint64
	workCarry float64 // instructions completed toward the next beat
}

// NewChip builds a chip with nTiles tiles in the given initial
// configuration.
func NewChip(p Params, cfg Config, nTiles int, clock *sim.Clock) (*Chip, error) {
	if err := p.Validate(cfg); err != nil {
		return nil, err
	}
	if nTiles < cfg.Cores {
		return nil, fmt.Errorf("angstrom: %d tiles cannot host %d cores", nTiles, cfg.Cores)
	}
	ch := &Chip{p: p, cfg: cfg, clock: clock, Energy: &EnergySensor{}}
	for i := 0; i < nTiles; i++ {
		t := &Tile{Counters: &CounterFile{}, Probes: &ProbeSet{}}
		q, err := NewEventQueue(64)
		if err != nil {
			return nil, err
		}
		t.Queue = q
		t.Thermal, err = NewThermal(45, 8, 0.05) // 45°C ambient-in-package
		if err != nil {
			return nil, err
		}
		t.Voltage.Set(p.VF[cfg.VF].Volts)
		t.Partner, err = NewPartnerCore(p.VF[cfg.VF], p.Core, t.Counters, q)
		if err != nil {
			return nil, err
		}
		ch.Tiles = append(ch.Tiles, t)
	}
	return ch, nil
}

// Attach connects a running application and its heartbeat monitor.
func (ch *Chip) Attach(inst *workload.Instance, mon *heartbeat.Monitor) {
	ch.inst = inst
	ch.mon = mon
	ch.beat = 0
	ch.workCarry = 0
}

// Config returns the current configuration.
func (ch *Chip) Config() Config { return ch.cfg }

// Params returns the chip constants.
func (ch *Chip) Params() Params { return ch.p }

// SetConfig reconfigures the chip (the act phase of the ODA loop).
func (ch *Chip) SetConfig(cfg Config) error {
	if err := ch.p.Validate(cfg); err != nil {
		return err
	}
	if cfg.Cores > len(ch.Tiles) {
		return fmt.Errorf("angstrom: %d cores exceed %d tiles", cfg.Cores, len(ch.Tiles))
	}
	ch.cfg = cfg
	v := ch.p.VF[cfg.VF].Volts
	for _, t := range ch.Tiles {
		t.Voltage.Set(v)
		t.Partner.Main = ch.p.VF[cfg.VF]
	}
	return nil
}

// Metrics evaluates the chip model for the attached workload at the
// current configuration.
func (ch *Chip) Metrics() (Metrics, error) {
	if ch.inst == nil {
		return Metrics{}, fmt.Errorf("angstrom: no workload attached")
	}
	return Evaluate(ch.p, ch.inst.Spec, ch.cfg)
}

// RunInterval advances the chip by dt seconds: the application executes
// at the model's aggregate IPS, beats are emitted into the monitor as
// their work completes, counters accumulate, sensors integrate, and
// every tile's probes are evaluated once at the end of the interval.
func (ch *Chip) RunInterval(dt float64) (Metrics, error) {
	m, err := ch.Metrics()
	if err != nil {
		return m, err
	}
	if dt <= 0 {
		return m, fmt.Errorf("angstrom: non-positive interval %g", dt)
	}
	if err := ch.advance(m, dt); err != nil {
		return m, err
	}
	ch.updateTiles(m, dt)
	return m, nil
}

// advance runs the beat-emission loop for dt seconds under metrics m.
// It rejects non-positive IPS and non-positive per-beat work up front:
// either would advance the clock by ±Inf/NaN or spin forever.
func (ch *Chip) advance(m Metrics, dt float64) error {
	if m.IPS <= 0 || math.IsNaN(m.IPS) {
		return fmt.Errorf("angstrom: model IPS %g is not positive; cannot advance", m.IPS)
	}
	end := ch.clock.Now() + dt
	for ch.clock.Now() < end-1e-12 {
		work := ch.inst.WorkForBeat(ch.beat)
		if work <= 0 || math.IsNaN(work) {
			return fmt.Errorf("angstrom: work %g for beat %d is not positive", work, ch.beat)
		}
		need := work - ch.workCarry
		if need < 0 {
			need = 0 // carry overshoot (config change mid-beat): emit now
		}
		tBeat := need / m.IPS
		if ch.clock.Now()+tBeat <= end {
			ch.clock.Advance(tBeat)
			ch.accountEnergy(m, tBeat)
			if ch.mon != nil {
				ch.mon.Beat()
			}
			ch.beat++
			ch.workCarry = 0
		} else {
			rem := end - ch.clock.Now()
			ch.workCarry += rem * m.IPS
			ch.clock.Advance(rem)
			ch.accountEnergy(m, rem)
		}
	}
	return nil
}

// accountEnergy integrates chip energy (and battery) over a slice.
func (ch *Chip) accountEnergy(m Metrics, dt float64) {
	j := m.PowerW * dt
	ch.Energy.Add(j)
	if ch.Batt != nil {
		ch.Batt.Drain(j)
	}
}

// updateTiles spreads counter deltas and sensor steps across tiles.
func (ch *Chip) updateTiles(m Metrics, dt float64) {
	perCoreInstr := uint64(m.IPS * dt / float64(ch.cfg.Cores))
	perCoreCycles := uint64(ch.p.VF[ch.cfg.VF].FHz * dt)
	// Both fractions below can go negative — CPI < 1 on a superscalar
	// model, or PowerW below the uncore floor — and a negative
	// float→uint64 conversion is implementation-defined in Go, which
	// corrupted the stall and energy counters. Clamp at zero.
	perCorePower := (m.PowerW - ch.p.UncoreW) / float64(ch.cfg.Cores)
	if perCorePower < 0 || math.IsNaN(perCorePower) {
		perCorePower = 0
	}
	stall := stallFrac(m.CPI)
	spec := ch.inst.Spec
	memOps := uint64(float64(perCoreInstr) * spec.MemOpsPerInstr)
	misses := uint64(float64(memOps) * m.MissRate)
	stalls := uint64(float64(perCoreCycles) * stall)
	for i, t := range ch.Tiles {
		if i < ch.cfg.Cores {
			t.Counters.Add(CtrInstructions, perCoreInstr)
			t.Counters.Add(CtrCycles, perCoreCycles)
			t.Counters.Add(CtrMemOps, memOps)
			t.Counters.Add(CtrL2Misses, misses)
			t.Counters.Add(CtrL2Hits, memOps-misses)
			t.Counters.Add(CtrStallCycles, stalls)
			t.Counters.Add(CtrEnergyNJ, uint64(perCorePower*dt*1e9))
			t.Thermal.Step(perCorePower, dt)
		} else {
			t.Thermal.Step(0, dt) // power-gated tiles cool toward ambient
		}
		t.Probes.Evaluate(t.Counters, ch.clock.Now())
	}
}

// BuildActuators exposes the chip's three headline knobs — core
// allocation, per-core cache capacity, and DVFS — as SEEC actuators for
// the attached workload. Effects are the model's predicted multipliers
// relative to the chip's current configuration (the designer-declared
// model of §3.2; the runtime's adaptive layer corrects any divergence).
func (ch *Chip) BuildActuators(coreOptions []int, cacheOptionsKB []int) ([]*actuator.Actuator, error) {
	if ch.inst == nil {
		return nil, fmt.Errorf("angstrom: attach a workload before building actuators")
	}
	spec := ch.inst.Spec
	base := ch.cfg
	baseM, err := Evaluate(ch.p, spec, base)
	if err != nil {
		return nil, err
	}
	mkSettings := func(vals []int, apply func(Config, int) Config, label func(int) string, nominalVal int) ([]actuator.Setting, int, error) {
		settings := make([]actuator.Setting, 0, len(vals))
		nominal := -1
		for _, v := range vals {
			cfg := apply(base, v)
			var eff actuator.Effect
			if v == nominalVal {
				nominal = len(settings)
				eff = actuator.Nominal()
			} else {
				m, merr := Evaluate(ch.p, spec, cfg)
				if merr != nil {
					return nil, 0, merr
				}
				eff = actuator.Effect{
					Speedup: m.HeartRate / baseM.HeartRate,
					PowerX:  (m.PowerW - ch.p.UncoreW) / (baseM.PowerW - ch.p.UncoreW),
					Distort: 1,
				}
			}
			settings = append(settings, actuator.Setting{Label: label(v), Value: v, Effect: eff})
		}
		if nominal < 0 {
			return nil, 0, fmt.Errorf("angstrom: nominal value %d not among settings", nominalVal)
		}
		return settings, nominal, nil
	}

	coreSettings, coreNom, err := mkSettings(coreOptions,
		func(c Config, v int) Config { c.Cores = v; return c },
		func(v int) string { return fmt.Sprintf("%d cores", v) }, base.Cores)
	if err != nil {
		return nil, err
	}
	cacheSettings, cacheNom, err := mkSettings(cacheOptionsKB,
		func(c Config, v int) Config { c.CacheKB = v; return c },
		func(v int) string { return fmt.Sprintf("%dKB L2", v) }, base.CacheKB)
	if err != nil {
		return nil, err
	}
	vfVals := make([]int, len(ch.p.VF))
	for i := range vfVals {
		vfVals[i] = i
	}
	vfSettings, vfNom, err := mkSettings(vfVals,
		func(c Config, v int) Config { c.VF = v; return c },
		func(v int) string {
			return fmt.Sprintf("%.1fV/%.0fMHz", ch.p.VF[v].Volts, ch.p.VF[v].FHz/1e6)
		}, base.VF)
	if err != nil {
		return nil, err
	}

	axes := []actuator.Axis{actuator.Performance, actuator.Power}
	acts := []*actuator.Actuator{
		{
			Name: "core-allocation", Settings: coreSettings, NominalIndex: coreNom,
			Apply: func(i int) error {
				c := ch.cfg
				c.Cores = coreSettings[i].Value
				return ch.SetConfig(c)
			},
			DelaySeconds: 0.001, Scope: actuator.GlobalScope, Axes: axes,
		},
		{
			Name: "l2-capacity", Settings: cacheSettings, NominalIndex: cacheNom,
			Apply: func(i int) error {
				c := ch.cfg
				c.CacheKB = cacheSettings[i].Value
				return ch.SetConfig(c)
			},
			DelaySeconds: 0.0001, Scope: actuator.GlobalScope, Axes: axes,
		},
		{
			Name: "dvfs", Settings: vfSettings, NominalIndex: vfNom,
			Apply: func(i int) error {
				c := ch.cfg
				c.VF = vfSettings[i].Value
				return ch.SetConfig(c)
			},
			DelaySeconds: 0.0005, Scope: actuator.GlobalScope, Axes: axes,
		},
	}
	for _, a := range acts {
		if err := a.Validate(); err != nil {
			return nil, err
		}
	}
	return acts, nil
}

// MaxHeartRate sweeps the given options for the attached workload and
// returns the highest achievable heart rate — used to pose the paper's
// "half of maximum" performance goals.
func (ch *Chip) MaxHeartRate(coreOptions, cacheOptionsKB []int) (float64, error) {
	if ch.inst == nil {
		return 0, fmt.Errorf("angstrom: no workload attached")
	}
	best := 0.0
	for _, cores := range coreOptions {
		for _, kb := range cacheOptionsKB {
			for vf := range ch.p.VF {
				cfg := ch.cfg
				cfg.Cores, cfg.CacheKB, cfg.VF = cores, kb, vf
				m, err := Evaluate(ch.p, ch.inst.Spec, cfg)
				if err != nil {
					return 0, err
				}
				best = math.Max(best, m.HeartRate)
			}
		}
	}
	return best, nil
}

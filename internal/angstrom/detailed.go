package angstrom

import (
	"fmt"
	"math"

	"angstrom/internal/cache"
	"angstrom/internal/noc"
	"angstrom/internal/workload"
)

// meshNet adapts a noc.Mesh to the cache.Network interface.
type meshNet struct{ m *noc.Mesh }

func (n meshNet) LatencyCycles(src, dst int) float64 { return n.m.LatencyCycles(src, dst) }
func (n meshNet) Hops(src, dst int) int              { return n.m.Hops(src, dst) }

// EvaluateDetailed is the trace-driven chip model: real set-associative
// caches per tile, a real coherence protocol, and a real mesh carry a
// sampled synthetic address trace; the measured memory behaviour then
// feeds the same assembler as the statistical model. This is the mode
// behind Figure 2 (the Graphite experiment of §2), where configurations
// are few and fidelity matters more than speed.
func EvaluateDetailed(p Params, spec workload.Spec, cfg Config, accesses int, seed uint64) (Metrics, error) {
	if err := p.Validate(cfg); err != nil {
		return Metrics{}, err
	}
	if err := spec.Validate(); err != nil {
		return Metrics{}, err
	}
	if accesses < 1000 {
		return Metrics{}, fmt.Errorf("angstrom: %d accesses too few to measure", accesses)
	}
	side := int(math.Ceil(math.Sqrt(float64(cfg.Cores))))
	ncfg := noc.DefaultConfig(side, side)
	ncfg.RouterCycles = p.RouterCycles
	ncfg.LinkCycles = p.LinkCycles
	ncfg.EVCCycles = p.EVCCycles
	ncfg.EVC = cfg.EVC
	ncfg.BAN = cfg.BAN
	mesh, err := noc.NewMesh(ncfg)
	if err != nil {
		return Metrics{}, err
	}

	vf := p.VF[cfg.VF]
	l2Cyc := p.SRAM.LatencyCycles(vf.Volts)
	memCyc := p.MemLatencyNs * 1e-9 * vf.FHz

	caches := make([]*cache.Cache, cfg.Cores)
	for i := range caches {
		caches[i], err = cache.New(cfg.CacheKB, 8, workload.LineBytes)
		if err != nil {
			return Metrics{}, err
		}
	}
	var prot cache.Protocol
	switch cfg.Coherence {
	case CoherenceNUCA:
		prot, err = cache.NewNUCA(caches, meshNet{mesh}, l2Cyc, memCyc)
	case CoherenceAdaptive:
		var dir, nuca cache.Protocol
		dir, err = cache.NewDirectory(caches, meshNet{mesh}, l2Cyc, memCyc)
		if err != nil {
			return Metrics{}, err
		}
		shadow := make([]*cache.Cache, cfg.Cores)
		for i := range shadow {
			shadow[i], err = cache.New(cfg.CacheKB, 8, workload.LineBytes)
			if err != nil {
				return Metrics{}, err
			}
		}
		nuca, err = cache.NewNUCA(shadow, meshNet{mesh}, l2Cyc, memCyc)
		if err != nil {
			return Metrics{}, err
		}
		prot, err = cache.NewAdaptive(dir, nuca, 4096, 10*memCyc)
	default:
		prot, err = cache.NewDirectory(caches, meshNet{mesh}, l2Cyc, memCyc)
	}
	if err != nil {
		return Metrics{}, err
	}

	gens := make([]*workload.TraceGen, cfg.Cores)
	for i := range gens {
		gens[i] = workload.NewTraceGen(spec, cfg.Cores, i, seed)
	}

	// Warm up for one fifth of the trace, then measure. Each core's
	// events land in its own padded counter block (PerCore), with the
	// float cycle sums in the matching PerCoreFloat bank; both are
	// aggregated once after the trace, in core order, so the totals are
	// identical whether configurations run serially or on sweep workers.
	warm := accesses / 5
	ctrs := NewPerCore(cfg.Cores)
	cycleAcc := NewPerCoreFloat(cfg.Cores)
	for i := 0; i < accesses; i++ {
		core := i % cfg.Cores
		line, write := gens[core].Next()
		out := prot.Access(core, line, write)
		if i < warm {
			continue
		}
		cf := ctrs.File(core)
		cf.Add(CtrMemOps, 1)
		cf.Add(CtrFlitsTx, uint64(out.Flits))
		cf.Add(CtrFlitHops, uint64(out.FlitHops))
		cf.Add(CtrMemAccesses, uint64(out.MemAccesses))
		if out.Hit {
			cf.Add(CtrL2Hits, 1)
		} else {
			cf.Add(CtrL2Misses, 1)
		}
		cycleAcc.Add(core, out.Cycles)
	}
	totals := ctrs.Aggregate()
	measured := int(totals[CtrMemOps])
	flitHops := int(totals[CtrFlitHops])
	memAcc := int(totals[CtrMemAccesses])
	cycles := cycleAcc.Sum()
	if measured == 0 {
		return Metrics{}, fmt.Errorf("angstrom: no measured accesses (trace of %d too short for warmup)", accesses)
	}
	offChip := float64(memAcc) / float64(measured)
	stall := cycles/float64(measured) - offChip*memCyc - l2Cyc
	if stall < 0 {
		stall = 0
	}
	b := memBehavior{
		perMemOpStallCycles: stall,
		offChipPerMemOp:     offChip,
		flitHopsPerInstr: spec.MemOpsPerInstr*float64(flitHops)/float64(measured) +
			spec.FlitsPerKiloInstr/1000*lnetHops(cfg),
		missRate: prot.Stats().MissRate(),
	}
	return p.assemble(spec, cfg, b), nil
}

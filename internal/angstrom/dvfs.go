package angstrom

import (
	"fmt"
	"math"
)

// VFPoint is one per-core voltage/frequency operating point (§4.2.1;
// the evaluation of §5.3 uses exactly two: 0.4 V/100 MHz and
// 0.8 V/500 MHz).
type VFPoint struct {
	Volts float64
	FHz   float64
}

// VFPoints are Angstrom's per-core operating points, low first.
func VFPoints() []VFPoint {
	return []VFPoint{
		{Volts: 0.4, FHz: 100e6},
		{Volts: 0.8, FHz: 500e6},
	}
}

// CoreEnergy models a core's switching and leakage energy as a function
// of voltage, anchored to the voltage-scalable processor of [17]
// (10.2 pJ/cycle at 0.54 V in the paper's citation; the CV² fit below
// gives ~10 pJ/cycle at 0.4–0.54 V class points for our parameters).
type CoreEnergy struct {
	// CeffPJPerV2 is the effective switched capacitance: dynamic energy
	// per cycle = Ceff·V², in pJ with V in volts.
	CeffPJPerV2 float64
	// LeakWAtNominal is leakage power at NominalV.
	LeakWAtNominal float64
	// NominalV anchors the leakage scaling.
	NominalV float64
	// StallActivity is the fraction of dynamic energy still burned on a
	// stalled cycle (clock tree, front end).
	StallActivity float64
}

// DefaultCoreEnergy returns the Angstrom core energy model.
func DefaultCoreEnergy() CoreEnergy {
	return CoreEnergy{
		CeffPJPerV2:    62.5, // 62.5·0.4² = 10 pJ/cycle at the low point
		LeakWAtNominal: 4e-3, // 4 mW at 0.8 V
		NominalV:       0.8,
		StallActivity:  0.3,
	}
}

// DynamicPJPerCycle is switching energy per active cycle at voltage v.
func (e CoreEnergy) DynamicPJPerCycle(v float64) float64 {
	return e.CeffPJPerV2 * v * v
}

// LeakW is leakage power at voltage v (V·e^((V−Vnom)/0.25) scaling, as
// in the SRAM model: DIBL-dominated superlinear drop).
func (e CoreEnergy) LeakW(v float64) float64 {
	return e.LeakWAtNominal * (v / e.NominalV) * math.Exp((v-e.NominalV)/0.25)
}

// Validate checks the model's parameters.
func (e CoreEnergy) Validate() error {
	if e.CeffPJPerV2 <= 0 || e.LeakWAtNominal < 0 || e.NominalV <= 0 {
		return fmt.Errorf("angstrom: bad core energy model %+v", e)
	}
	if e.StallActivity < 0 || e.StallActivity > 1 {
		return fmt.Errorf("angstrom: stall activity %g outside [0,1]", e.StallActivity)
	}
	return nil
}

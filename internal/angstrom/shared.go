package angstrom

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"angstrom/internal/actuator"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

// This file implements multi-application sharing of one Angstrom chip:
// a SharedChip splits its tile pool into per-application Partitions,
// each an independently configurable slice of the hardware with its own
// actuation knobs (cores, L2 capacity, DVFS) and its own Sensor view
// (IPS, power, stall fraction). This is the serving-side counterpart of
// Chip: where Chip closes the loop around a single simulated experiment,
// SharedChip lets a long-lived daemon bind every enrolled application to
// real hardware knobs on one chip — the paper's vision of the runtime
// arbitrating a 1000-core die across a fleet of self-aware applications.
//
// Concurrency model: SharedChip's mutex guards the tile ledger and the
// partition directory; each Partition's mutex guards its configuration,
// cached model metrics, and execution state. Lock order is SharedChip
// before Partition; Sense and Advance take only the partition lock, so
// status reads and the daemon's tick never serialize behind enrollment.
//
// Partitions evaluate the chip model independently for their own
// (workload, configuration) slice; the explicit resource ledgers (the
// tile pool here, time shares and power budgets in the serving layer)
// arbitrate what each may hold. On top of that, contention.go models
// the two resources no ledger partitions cleanly — off-chip memory
// bandwidth and the chip-wide mesh: UpdateContention aggregates every
// partition's traffic demand and degrades each one's effective IPS,
// stall fraction, and per-access power when the chip saturates, so
// co-location costs are visible to Sense and Advance.

// SharedChip is one Angstrom chip whose tiles are partitioned among many
// applications. The ledger is kept in fractional core-equivalents: a
// partition holding C cores at time share s consumes C×s, so an
// oversubscribed fleet (time-sharing units) still respects the physical
// tile pool.
type SharedChip struct {
	p      Params
	tiles  int
	nocCap float64 // mesh flit-hop capacity (contention.go)

	mu    sync.Mutex
	used  float64 // sum over partitions of Cores × Share
	// memScale derates the chip's off-chip bandwidth (thermal throttle,
	// failed channel, chaos injection). 1 = nominal.
	memScale float64
	parts    map[string]*Partition
	// order lists partitions in acquisition order: deterministic float
	// aggregation for the contention pass and power sums (map iteration
	// order would vary run to run and perturb last-ulp results).
	order        []*Partition
	contention   Contention    // last UpdateContention snapshot
	scratch      []contendSlot // reused by UpdateContention
	ledgerFaults uint64        // accounting violations caught by Release
}

// NewSharedChip builds a chip with the given tile count.
func NewSharedChip(p Params, tiles int) (*SharedChip, error) {
	if tiles < 1 || tiles > p.MaxCores {
		return nil, fmt.Errorf("angstrom: %d tiles outside [1, %d]", tiles, p.MaxCores)
	}
	sc := &SharedChip{p: p, tiles: tiles, nocCap: nocCapacity(p, tiles), memScale: 1, parts: make(map[string]*Partition)}
	sc.contention = Contention{MemCapacityBps: p.MemBandwidthBps, NoCCapacity: sc.nocCap}
	return sc, nil
}

// SetMemBandwidthScale derates the chip's off-chip bandwidth to
// scale × nominal — a thermal throttle, a failed memory channel, or a
// chaos injection. The derated capacity takes effect at the next
// contention pass. Inside internal/server this is journaled daemon
// state: only persist.go writers may call it.
//
//angstrom:journaled mutator
func (sc *SharedChip) SetMemBandwidthScale(scale float64) error {
	if !(scale > 0 && scale <= 1) {
		return fmt.Errorf("angstrom: mem bandwidth scale %g outside (0, 1]", scale)
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.memScale = scale
	return nil
}

// MemBandwidthScale reports the current off-chip bandwidth derating.
func (sc *SharedChip) MemBandwidthScale() float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.memScale
}

// Params returns the chip constants.
func (sc *SharedChip) Params() Params { return sc.p }

// Tiles reports the physical tile count.
func (sc *SharedChip) Tiles() int { return sc.tiles }

// Acquire carves a partition for the named application, reserving
// cfg.Cores × share core-equivalents. The monitor receives the beats the
// partition emits as it advances; the instance supplies per-beat work.
// The tile ledger is journaled daemon state: inside internal/server
// only persist.go writers may call this.
//
//angstrom:journaled mutator
func (sc *SharedChip) Acquire(name string, inst *workload.Instance, mon *heartbeat.Monitor, cfg Config, share float64, start sim.Time) (*Partition, error) {
	if inst == nil || mon == nil {
		return nil, fmt.Errorf("angstrom: acquire %q with nil instance or monitor", name)
	}
	if err := sc.p.Validate(cfg); err != nil {
		return nil, err
	}
	if share <= 0 || share > 1 {
		return nil, fmt.Errorf("angstrom: time share %g outside (0, 1]", share)
	}
	m, err := Evaluate(sc.p, inst.Spec, cfg)
	if err != nil {
		return nil, err
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if _, dup := sc.parts[name]; dup {
		return nil, fmt.Errorf("angstrom: partition %q already acquired", name)
	}
	need := float64(cfg.Cores) * share
	if sc.used+need > float64(sc.tiles)+1e-9 {
		return nil, fmt.Errorf("angstrom: %g core-equivalents requested, %g of %d free",
			need, float64(sc.tiles)-sc.used, sc.tiles)
	}
	pt := &Partition{sc: sc, name: name, inst: inst, mon: mon, cfg: cfg, share: share, m: m, now: start}
	pt.terms = newContendTerms(sc.p, inst.Spec.MemOpsPerInstr, inst.Spec.FlitsPerKiloInstr, cfg, m)
	pt.intf = isolatedInterference(m)
	pt.contendedPowerW = m.PowerW
	sc.used += need
	sc.parts[name] = pt
	sc.order = append(sc.order, pt)
	return pt, nil
}

// isolatedInterference is the identity degradation: the partition runs
// exactly as its isolated model evaluation predicts, which is the state
// before the first contention pass (and after a reconfiguration, until
// the next pass re-prices the new demand).
func isolatedInterference(m Metrics) Interference {
	return Interference{Slowdown: 1, CPI: m.CPI, StallFrac: stallFrac(m.CPI), MemRho: m.MemRho}
}

// ledgerEps absorbs the float residue of repeated fractional-share
// add/subtract cycles; a deficit beyond it is an accounting bug.
const ledgerEps = 1e-6

// Release returns a partition's tiles to the pool. Releasing an unknown
// name is a no-op. A ledger that would go negative beyond float residue
// means double-release or lost accounting — it is counted as a fault
// (LedgerFaults) instead of being silently clamped away.
//
//angstrom:journaled mutator
func (sc *SharedChip) Release(name string) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	pt, ok := sc.parts[name]
	if !ok {
		return
	}
	pt.mu.Lock()
	sc.used -= float64(pt.cfg.Cores) * pt.share
	pt.released = true
	pt.mu.Unlock()
	delete(sc.parts, name)
	for i, o := range sc.order {
		if o == pt {
			sc.order = append(sc.order[:i], sc.order[i+1:]...)
			break
		}
	}
	if sc.used < 0 {
		if sc.used < -ledgerEps {
			sc.ledgerFaults++
		}
		sc.used = 0
	}
}

// LedgerFaults counts accounting violations the tile ledger has caught
// (a release that would drive usage negative). Always zero unless a
// bookkeeping bug exists; tests and /v1/chip surface it so drift fails
// loudly instead of being masked.
func (sc *SharedChip) LedgerFaults() uint64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.ledgerFaults
}

// Usage reports the partition count and the core-equivalents in use.
func (sc *SharedChip) Usage() (partitions int, coreEquivalents float64) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.parts), sc.used
}

// TotalPowerW sums every partition's attributed power plus the chip's
// constant uncore overhead — the quantity a shared power budget bounds.
func (sc *SharedChip) TotalPowerW() float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	total := sc.p.UncoreW
	for _, pt := range sc.order {
		total += pt.Sense().PowerW
	}
	return total
}

// PartitionNames lists held partitions, sorted.
func (sc *SharedChip) PartitionNames() []string {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	names := make([]string, 0, len(sc.parts))
	for n := range sc.parts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Partition is one application's slice of a SharedChip: a private
// configuration over shared tiles, a cached model evaluation, and the
// execution state that turns model IPS into heartbeats.
type Partition struct {
	sc   *SharedChip
	name string
	inst *workload.Instance
	mon  *heartbeat.Monitor

	mu        sync.Mutex
	cfg       Config
	share     float64 // time share of the held cores (1 = dedicated)
	m         Metrics // model evaluation for cfg, cached until reconfigured
	beat      uint64
	workCarry float64  // instructions completed toward the next beat
	now       sim.Time // partition-local execution frontier
	energyJ   float64
	released  bool

	// Cross-partition contention state (contention.go): the demand
	// terms recomputed at every reconfiguration, and the degradation
	// the last chip-wide pass assigned. Reads are cached-float loads,
	// so Sense stays allocation-free.
	terms           contendTerms
	intf            Interference
	contendedPowerW float64 // m.PowerW minus throughput-scaled NoC/DRAM energy
}

// Name returns the owning application's name.
func (pt *Partition) Name() string { return pt.name }

// Config returns the partition's current hardware configuration.
func (pt *Partition) Config() Config {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.cfg
}

// Share returns the current time share.
func (pt *Partition) Share() float64 {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.share
}

// Now reports the partition's execution frontier: the simulated time up
// to which Advance has run the application.
func (pt *Partition) Now() sim.Time {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.now
}

// SetShare changes the partition's time share, adjusting the chip's
// core-equivalent ledger. Growth beyond the free pool is refused.
//
//angstrom:journaled mutator
func (pt *Partition) SetShare(share float64) error {
	if share <= 0 || share > 1 {
		return fmt.Errorf("angstrom: time share %g outside (0, 1]", share)
	}
	sc := pt.sc
	sc.mu.Lock()
	defer sc.mu.Unlock()
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.released {
		return fmt.Errorf("angstrom: partition %q released", pt.name)
	}
	delta := float64(pt.cfg.Cores) * (share - pt.share)
	if sc.used+delta > float64(sc.tiles)+1e-9 {
		return fmt.Errorf("angstrom: share %g would exceed the tile pool", share)
	}
	sc.used += delta
	pt.share = share
	return nil
}

// setConfig validates and applies a new configuration, adjusting the
// tile ledger for core-count changes and re-evaluating the cached model.
func (pt *Partition) setConfig(cfg Config) error {
	if err := pt.sc.p.Validate(cfg); err != nil {
		return err
	}
	m, err := Evaluate(pt.sc.p, pt.inst.Spec, cfg)
	if err != nil {
		return err
	}
	sc := pt.sc
	sc.mu.Lock()
	defer sc.mu.Unlock()
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.released {
		return fmt.Errorf("angstrom: partition %q released", pt.name)
	}
	delta := float64(cfg.Cores-pt.cfg.Cores) * pt.share
	if sc.used+delta > float64(sc.tiles)+1e-9 {
		return fmt.Errorf("angstrom: %d cores would exceed the tile pool", cfg.Cores)
	}
	sc.used += delta
	pt.cfg = cfg
	pt.m = m
	// Re-derive the contention inputs, carrying the current slowdown
	// onto the new evaluation (a reconfiguration does not relieve
	// co-tenant pressure; the next chip-wide pass re-prices it exactly).
	// Resetting to the identity here would let the schedule's per-tick
	// knob flips erase the contention pass before Advance ever saw it.
	pt.terms = newContendTerms(sc.p, pt.inst.Spec.MemOpsPerInstr, pt.inst.Spec.FlitsPerKiloInstr, cfg, m)
	slow := pt.intf.Slowdown
	if !(slow > 0 && slow <= 1) {
		slow = 1
	}
	cpi := m.CPI / slow
	pt.intf.Slowdown, pt.intf.CPI, pt.intf.StallFrac = slow, cpi, stallFrac(cpi)
	pt.contendedPowerW = m.PowerW - (m.NoCW+m.MemW)*(1-slow)
	return nil
}

// Sense implements actuator.Sensor: the partition's share-scaled view of
// the chip model — aggregate IPS, attributed power (active power beyond
// uncore, scaled by the time share), memory stall fraction, predicted
// heart rate, and cumulative energy. Every figure is degraded by the
// last contention pass's Interference, so the controller and the
// manager observe real co-location costs, not per-app projections. It
// is a cached-struct read under one mutex: allocation-free and cheap
// enough for every status request (BenchmarkPartitionSense gates it at
// 0 allocs/op).
//
//angstrom:hotpath
func (pt *Partition) Sense() actuator.Sample {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	active := pt.contendedPowerW - pt.sc.p.UncoreW
	if active < 0 {
		active = 0
	}
	return actuator.Sample{
		Time:      pt.now,
		IPS:       pt.m.IPS * pt.share * pt.intf.Slowdown,
		PowerW:    active * pt.share,
		StallFrac: pt.intf.StallFrac,
		HeartRate: pt.m.HeartRate * pt.share * pt.intf.Slowdown,
		EnergyJ:   pt.energyJ,
	}
}

// Interference returns the degradation the last contention pass
// assigned to this partition (the identity before the first pass).
func (pt *Partition) Interference() Interference {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.intf
}

// Metrics returns the cached model evaluation for the current
// configuration (unscaled by the time share).
func (pt *Partition) Metrics() Metrics {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.m
}

// Advance executes the partition's application up to time `until`,
// emitting heartbeats into the monitor at their model-exact completion
// times (so windowed rates see no batching bias) and integrating energy.
// The effective execution rate is the model's IPS scaled by the time
// share. Calls with `until` at or before the current frontier are no-ops.
func (pt *Partition) Advance(until sim.Time) error {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.released {
		return fmt.Errorf("angstrom: partition %q released", pt.name)
	}
	ips := pt.m.IPS * pt.share * pt.intf.Slowdown
	if ips <= 0 || math.IsNaN(ips) {
		return fmt.Errorf("angstrom: partition %q effective IPS %g not positive", pt.name, ips)
	}
	for pt.now < until-1e-12 {
		work := pt.inst.WorkForBeat(pt.beat)
		if work <= 0 || math.IsNaN(work) {
			return fmt.Errorf("angstrom: work %g for beat %d is not positive", work, pt.beat)
		}
		need := work - pt.workCarry
		if need < 0 {
			need = 0 // carry overshoot (reconfiguration mid-beat): emit now
		}
		tBeat := need / ips
		if pt.now+tBeat <= until {
			pt.now += tBeat
			pt.energyJ += pt.attributedPowerW() * tBeat
			pt.mon.BeatAt(pt.now)
			pt.beat++
			pt.workCarry = 0
		} else {
			rem := until - pt.now
			pt.workCarry += rem * ips
			pt.now = until
			pt.energyJ += pt.attributedPowerW() * rem
		}
	}
	return nil
}

// attributedPowerW is the power charged to this partition, degraded by
// the contention pass (stalled cycles still burn core and cache power;
// NoC and DRAM energy scale with achieved throughput); caller holds
// pt.mu.
func (pt *Partition) attributedPowerW() float64 {
	active := pt.contendedPowerW - pt.sc.p.UncoreW
	if active < 0 {
		active = 0
	}
	return active * pt.share
}

// --- Knobs: the act-side hardware contract ---------------------------

// Knobs returns the partition's three hardware knobs — core allocation,
// per-core L2 capacity, and the DVFS operating point — as
// actuator.Knob implementations. The option slices must be ascending and
// include the partition's current setting (so every knob has a
// well-defined starting rung).
func (pt *Partition) Knobs(coreOptions, cacheOptionsKB []int) (cores, cache, dvfs actuator.Knob, err error) {
	cfg := pt.Config()
	if err := validOptions("core", coreOptions, cfg.Cores); err != nil {
		return nil, nil, nil, err
	}
	if err := validOptions("cache", cacheOptionsKB, cfg.CacheKB); err != nil {
		return nil, nil, nil, err
	}
	return &coreKnob{pt: pt, options: coreOptions},
		&cacheKnob{pt: pt, optionsKB: cacheOptionsKB},
		&vfKnob{pt: pt}, nil
}

func validOptions(kind string, options []int, current int) error {
	if len(options) == 0 {
		return fmt.Errorf("angstrom: no %s options", kind)
	}
	found := false
	for i, v := range options {
		if i > 0 && v <= options[i-1] {
			return fmt.Errorf("angstrom: %s options not ascending", kind)
		}
		if v == current {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("angstrom: current %s setting %d not among options %v", kind, current, options)
	}
	return nil
}

func indexOf(options []int, v int) int {
	for i, o := range options {
		if o == v {
			return i
		}
	}
	return 0
}

// coreKnob resizes the partition's core allocation.
type coreKnob struct {
	pt      *Partition
	options []int
}

func (k *coreKnob) Name() string { return "cores" }
func (k *coreKnob) Levels() int  { return len(k.options) }
func (k *coreKnob) Level() int   { return indexOf(k.options, k.pt.Config().Cores) }
func (k *coreKnob) SetLevel(level int) error {
	if level < 0 || level >= len(k.options) {
		return fmt.Errorf("angstrom: core level %d outside [0, %d)", level, len(k.options))
	}
	cfg := k.pt.Config()
	cfg.Cores = k.options[level]
	return k.pt.setConfig(cfg)
}

// cacheKnob resizes the partition's per-core L2 capacity.
type cacheKnob struct {
	pt        *Partition
	optionsKB []int
}

func (k *cacheKnob) Name() string { return "l2-capacity" }
func (k *cacheKnob) Levels() int  { return len(k.optionsKB) }
func (k *cacheKnob) Level() int   { return indexOf(k.optionsKB, k.pt.Config().CacheKB) }
func (k *cacheKnob) SetLevel(level int) error {
	if level < 0 || level >= len(k.optionsKB) {
		return fmt.Errorf("angstrom: cache level %d outside [0, %d)", level, len(k.optionsKB))
	}
	cfg := k.pt.Config()
	cfg.CacheKB = k.optionsKB[level]
	return k.pt.setConfig(cfg)
}

// vfKnob selects the partition's DVFS operating point.
type vfKnob struct {
	pt *Partition
}

func (k *vfKnob) Name() string { return "dvfs" }
func (k *vfKnob) Levels() int  { return len(k.pt.sc.p.VF) }
func (k *vfKnob) Level() int   { return k.pt.Config().VF }
func (k *vfKnob) SetLevel(level int) error {
	if level < 0 || level >= len(k.pt.sc.p.VF) {
		return fmt.Errorf("angstrom: VF level %d outside [0, %d)", level, len(k.pt.sc.p.VF))
	}
	cfg := k.pt.Config()
	cfg.VF = level
	return k.pt.setConfig(cfg)
}

var (
	_ actuator.Sensor = (*Partition)(nil)
	_ actuator.Knob   = (*coreKnob)(nil)
	_ actuator.Knob   = (*cacheKnob)(nil)
	_ actuator.Knob   = (*vfKnob)(nil)
)

package angstrom

import "math"

// This file models cross-partition interference on a SharedChip: the
// two resources every partition touches but none owns — the off-chip
// memory bus and the chip-wide mesh. Each partition's isolated model
// evaluation (Evaluate) already prices its *own* bandwidth pressure;
// what it cannot see is the other tenants. The contention pass closes
// that gap with a chip-wide ledger:
//
//  1. Every partition declares its demand at configuration time: the
//     off-chip bytes/s and NoC flit-hops/s its (workload, config) pair
//     generates when running full-rate (Metrics.MemBytesPerSec,
//     Metrics.FlitHopsPerSec), plus the CPI terms those demands stall.
//  2. UpdateContention aggregates time-share-scaled demand across all
//     partitions, computes chip-wide utilization of both resources,
//     and re-prices each partition's CPI with the *shared* utilization
//     in place of the private one. Memory stalls inflate through the
//     same 1/(1-rho) service-time factor the assembler uses; network
//     stalls gain the mesh's M/M/1 queueing term rho/(1-rho) per hop
//     (noc.Mesh.LatencyCycles uses the identical form per link).
//  3. The resulting slowdown (isolated CPI / contended CPI) multiplies
//     the partition's effective IPS and heart rate, flows into Sense,
//     Advance, and attributed power, and is re-estimated each pass by
//     a short fixed point (degraded tenants emit less traffic, which
//     in turn relieves the shared resources).
//
// A partition running alone reproduces its isolated evaluation for
// memory exactly (the shared rho equals its private one) and gains
// only its own small queueing term on the mesh. UpdateContention is a
// per-tick pass, not a hot path, but it is allocation-free in steady
// state (scratch reuse) so a ticking daemon does not churn the heap.

// stallFrac is the memory-stall fraction implied by a per-core CPI,
// clamped to [0, 1) for sub-unity or degenerate CPIs. Every producer
// of an Interference uses it so the clamp cannot diverge.
func stallFrac(cpi float64) float64 {
	s := 1 - 1/cpi
	if s < 0 || math.IsNaN(s) {
		return 0
	}
	return s
}

// nocEfficiency discounts the mesh's raw link-cycle capacity for the
// load imbalance of dimension-ordered routing under non-uniform
// traffic: center links saturate well before edge links are busy.
const nocEfficiency = 0.7

// rhoCap bounds both utilizations just below saturation, matching the
// assembler's memory fixed point and the mesh's queueing clamp.
const rhoCap = 0.95

// Interference is one partition's view of cross-partition contention:
// the degradation applied on top of its isolated model evaluation.
// The zero value of Slowdown is never used — an uncontended partition
// reports Slowdown 1.
type Interference struct {
	// Slowdown multiplies the isolated model's IPS and heart rate
	// (1 = no interference; 0.8 = the partition runs at 80% of its
	// isolated throughput because of co-tenant traffic).
	Slowdown float64
	// CPI is the contended per-core cycles per instruction.
	CPI float64
	// StallFrac is the contended memory-stall fraction (1 - 1/CPI).
	StallFrac float64
	// MemRho and NoCRho are the chip-wide utilizations this partition
	// observed at the last contention pass.
	MemRho, NoCRho float64
}

// Contention is the chip-wide snapshot of the shared-resource ledger
// after the last UpdateContention pass.
type Contention struct {
	// MemDemandBps is aggregate effective off-chip demand: the sum of
	// every partition's share- and slowdown-scaled bytes/s.
	MemDemandBps float64
	// MemCapacityBps is the chip's off-chip bandwidth.
	MemCapacityBps float64
	// MemRho is min(MemDemandBps/MemCapacityBps, 0.95).
	MemRho float64
	// FlitHopsPerSec is aggregate effective NoC injection demand.
	FlitHopsPerSec float64
	// NoCCapacity is the mesh's discounted flit-hop service capacity.
	NoCCapacity float64
	// NoCRho is min(FlitHopsPerSec/NoCCapacity, 0.95).
	NoCRho float64
	// OfferedMemBps and OfferedFlitHops are the aggregate *offered*
	// demands: share-scaled but NOT slowdown-scaled. On a saturated chip
	// the effective aggregates above collapse (throttled partitions
	// inject less), so delivered utilization can look low exactly when
	// the chip is drowning; the offered aggregates keep growing and are
	// what fleet-level placement and migration rank dies by.
	OfferedMemBps   float64
	OfferedFlitHops float64
	// Passes counts completed UpdateContention calls.
	Passes uint64
}

// contendTerms are the per-partition inputs of the contention pass,
// recomputed whenever the partition's configuration (and so its cached
// Metrics) changes. All terms describe full-rate execution; the pass
// scales by time share and slowdown.
type contendTerms struct {
	// memBps and flitHops are the full-rate demands.
	memBps, flitHops float64
	// offChipCPI is the CPI spent waiting off-chip per unit of the
	// memory service-time inflation factor: MemOpsPerInstr x
	// OffChipPerMemOp x base memory cycles at this VF point.
	offChipCPI float64
	// selfInflate is the inflation factor 1/max(1-rho, 0.05) the
	// isolated evaluation already charged for the partition's own rho.
	selfInflate float64
	// netQueueCPI is the CPI added per unit of mesh queueing delay
	// rho/(1-rho): round-trip miss traffic plus synchronization
	// traffic, times the configuration's average hop count.
	netQueueCPI float64
}

// contendSlot is the scratch state UpdateContention keeps per
// partition while iterating the fixed point.
type contendSlot struct {
	pt    *Partition
	share float64
	terms contendTerms
	m     Metrics
	slow  float64
}

// newContendTerms derives the contention inputs from a cached model
// evaluation. Mirrors the CPI assembly in Params.assemble: the
// off-chip component is MemOpsPerInstr x offChipPerMemOp x memCyc, the
// network components are miss round trips (2 x hops) and the
// synchronization stall fraction (0.2 flit-latency per flit).
func newContendTerms(p Params, memOpsPerInstr, flitsPerKiloInstr float64, cfg Config, m Metrics) contendTerms {
	f := p.VF[cfg.VF].FHz
	memCycBase := p.MemLatencyNs * 1e-9 * f
	hops := lnetHops(cfg)
	return contendTerms{
		memBps:      m.MemBytesPerSec,
		flitHops:    m.FlitHopsPerSec,
		offChipCPI:  memOpsPerInstr * m.OffChipPerMemOp * memCycBase,
		selfInflate: 1 / math.Max(1-m.MemRho, 0.05),
		netQueueCPI: (memOpsPerInstr*m.MissRate*2 + flitsPerKiloInstr/1000*0.2) * hops,
	}
}

// nocCapacity is the chip-wide mesh's flit-hop service capacity: every
// directed link of a side x side mesh moves NoCFlitBW flits per cycle
// at the top operating frequency, discounted for routing imbalance. A
// one-tile chip has no mesh and no NoC contention.
func nocCapacity(p Params, tiles int) float64 {
	side := int(math.Ceil(math.Sqrt(float64(tiles))))
	links := 4 * side * (side - 1)
	if links == 0 {
		return math.Inf(1)
	}
	flitBW := p.NoCFlitBW
	if flitBW <= 0 {
		flitBW = 1
	}
	fMax := 0.0
	for _, vf := range p.VF {
		fMax = math.Max(fMax, vf.FHz)
	}
	return float64(links) * flitBW * fMax * nocEfficiency
}

// Contention returns the chip-wide snapshot of the last contention
// pass. Before the first pass every field but the capacities is zero.
func (sc *SharedChip) Contention() Contention {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.contention
}

// UpdateContention runs one chip-wide contention pass: aggregate every
// partition's share-scaled demand on the memory bus and the mesh,
// derive chip-wide utilizations, and update each partition's cached
// Interference so Sense, Advance, and attributed power reflect real
// co-location costs. The caller (the serving tick) invokes it once per
// decision period; configuration changes between passes run at the
// previous pass's degradation until the next one.
//
// The pass is a three-iteration fixed point: a degraded partition
// executes fewer instructions per second and therefore injects less
// traffic, so effective demand is slowdown-scaled and re-aggregated.
func (sc *SharedChip) UpdateContention() {
	sc.mu.Lock()
	defer sc.mu.Unlock()

	slots := sc.scratch[:0]
	for _, pt := range sc.order {
		pt.mu.Lock()
		slots = append(slots, contendSlot{
			pt:    pt,
			share: pt.share,
			terms: pt.terms,
			m:     pt.m,
			slow:  1,
		})
		pt.mu.Unlock()
	}
	sc.scratch = slots[:0] // keep the backing array for the next pass

	memCap := sc.p.MemBandwidthBps * sc.memScale
	nocCap := sc.nocCap
	var memDemand, nocDemand float64
	for iter := 0; iter < 3; iter++ {
		memDemand, nocDemand = 0, 0
		for i := range slots {
			s := &slots[i]
			memDemand += s.share * s.slow * s.terms.memBps
			nocDemand += s.share * s.slow * s.terms.flitHops
		}
		for i := range slots {
			s := &slots[i]
			// The partition sees the bus at its own full-rate pressure
			// plus everybody else's effective pressure: while its time
			// share runs, it injects at full rate.
			othersMem := memDemand - s.share*s.slow*s.terms.memBps
			othersNoC := nocDemand - s.share*s.slow*s.terms.flitHops
			rhoMem := math.Min((othersMem+s.terms.memBps)/memCap, rhoCap)
			rhoNoC := math.Min((othersNoC+s.terms.flitHops)/nocCap, rhoCap)

			extra := s.terms.offChipCPI * (1/math.Max(1-rhoMem, 0.05) - s.terms.selfInflate)
			if extra < 0 {
				extra = 0 // shared rho below the private one: no relief beyond the isolated model
			}
			extra += s.terms.netQueueCPI * rhoNoC / (1 - rhoNoC)
			cpi := s.m.CPI + extra
			s.slow = s.m.CPI / cpi
		}
	}

	// Re-aggregate once with the final slowdowns so the written-back
	// rhos and the chip snapshot describe exactly the demand the fleet
	// was priced at (the loop above leaves the aggregate one iteration
	// stale).
	memDemand, nocDemand = 0, 0
	for i := range slots {
		s := &slots[i]
		memDemand += s.share * s.slow * s.terms.memBps
		nocDemand += s.share * s.slow * s.terms.flitHops
	}
	for i := range slots {
		s := &slots[i]
		othersMem := memDemand - s.share*s.slow*s.terms.memBps
		othersNoC := nocDemand - s.share*s.slow*s.terms.flitHops
		rhoMem := math.Min((othersMem+s.terms.memBps)/memCap, rhoCap)
		rhoNoC := math.Min((othersNoC+s.terms.flitHops)/nocCap, rhoCap)
		cpi := s.m.CPI / s.slow
		// Per-access energy (NoC transport, off-chip DRAM) scales with
		// achieved throughput; core and cache power keep their leakage
		// and stall-activity floors.
		powerW := s.m.PowerW - (s.m.NoCW+s.m.MemW)*(1-s.slow)
		s.pt.mu.Lock()
		if !s.pt.released {
			s.pt.intf = Interference{
				Slowdown:  s.slow,
				CPI:       cpi,
				StallFrac: stallFrac(cpi),
				MemRho:    rhoMem,
				NoCRho:    rhoNoC,
			}
			s.pt.contendedPowerW = powerW
		}
		s.pt.mu.Unlock()
	}

	var offeredMem, offeredNoC float64
	for i := range slots {
		s := &slots[i]
		offeredMem += s.share * s.terms.memBps
		offeredNoC += s.share * s.terms.flitHops
	}

	sc.contention = Contention{
		MemDemandBps:    memDemand,
		MemCapacityBps:  memCap,
		MemRho:          math.Min(memDemand/memCap, rhoCap),
		FlitHopsPerSec:  nocDemand,
		NoCCapacity:     nocCap,
		NoCRho:          math.Min(nocDemand/nocCap, rhoCap),
		OfferedMemBps:   offeredMem,
		OfferedFlitHops: offeredNoC,
		Passes:          sc.contention.Passes + 1,
	}

	// Zero the scratch backing array: entries past the next pass's
	// length would otherwise pin released partitions (and their
	// monitors) for as long as the historical peak fleet size.
	full := slots[:cap(slots)]
	for i := range full {
		full[i] = contendSlot{}
	}
}

package angstrom

import (
	"fmt"
	"math"
)

// This file models the non-traditional sensors of §4.1: "temperature,
// voltage, battery charge, and energy consumption", deployed per tile so
// the runtime can observe variation across the chip and react to
// environmental change (cooling failures, dying batteries).

// Thermal is a first-order RC thermal model for one tile:
//
//	dT/dt = (T_env + P·R_th − T) / τ
//
// Steady state is T_env + P·R_th; τ sets how fast the tile heats/cools.
type Thermal struct {
	EnvC   float64 // ambient, °C
	RthCPW float64 // junction-to-ambient thermal resistance, °C/W
	TauS   float64 // thermal time constant, seconds

	tC float64
}

// NewThermal starts a sensor in thermal equilibrium with the ambient.
func NewThermal(envC, rthCPW, tauS float64) (*Thermal, error) {
	if rthCPW <= 0 || tauS <= 0 {
		return nil, fmt.Errorf("angstrom: non-positive thermal constants")
	}
	return &Thermal{EnvC: envC, RthCPW: rthCPW, TauS: tauS, tC: envC}, nil
}

// Step advances the model by dt seconds at the given tile power.
func (t *Thermal) Step(powerW, dt float64) {
	target := t.EnvC + powerW*t.RthCPW
	// Exact first-order step (stable for any dt).
	alpha := 1 - math.Exp(-dt/t.TauS)
	t.tC += (target - t.tC) * alpha
}

// ReadC returns the current junction temperature in °C.
func (t *Thermal) ReadC() float64 { return t.tC }

// SetEnv models an environmental change (e.g. a cooling failure raising
// the effective ambient).
func (t *Thermal) SetEnv(envC float64) { t.EnvC = envC }

// Battery models a finite energy source (the paper's "dying batteries"
// scenario for mobile deployments of the architecture).
type Battery struct {
	capacityJ float64
	chargeJ   float64
}

// NewBattery builds a full battery with the given capacity in joules.
func NewBattery(capacityJ float64) (*Battery, error) {
	if capacityJ <= 0 {
		return nil, fmt.Errorf("angstrom: non-positive battery capacity")
	}
	return &Battery{capacityJ: capacityJ, chargeJ: capacityJ}, nil
}

// Drain removes energy, clamping at empty, and reports whether the
// battery is still non-empty.
func (b *Battery) Drain(j float64) bool {
	b.chargeJ -= j
	if b.chargeJ < 0 {
		b.chargeJ = 0
	}
	return b.chargeJ > 0
}

// Fraction reports remaining charge in [0, 1].
func (b *Battery) Fraction() float64 { return b.chargeJ / b.capacityJ }

// RemainingJ reports remaining charge in joules.
func (b *Battery) RemainingJ() float64 { return b.chargeJ }

// EnergySensor is a per-tile cumulative energy counter (§4.1, following
// the Sandy-Bridge-style energy counters of [31]). It satisfies
// heartbeat.EnergyMeter, so application monitors can attach directly to
// a tile's — or the whole chip's — meter.
type EnergySensor struct {
	joules float64
}

// Add accumulates consumed energy.
func (e *EnergySensor) Add(j float64) { e.joules += j }

// EnergyJoules implements heartbeat.EnergyMeter.
func (e *EnergySensor) EnergyJoules() float64 { return e.joules }

// VoltageSensor reports a tile's current supply voltage; the chip model
// updates it on DVFS transitions.
type VoltageSensor struct {
	volts float64
}

// Set records a new supply point.
func (v *VoltageSensor) Set(volts float64) { v.volts = volts }

// ReadV returns the supply voltage.
func (v *VoltageSensor) ReadV() float64 { return v.volts }

package angstrom

import "fmt"

// PartnerCore models §4.3: each main core is paired with a small,
// low-power core that can inspect and manipulate the main core's state
// (counters, configuration registers) and drain its event-probe queues.
// Running the SEEC decision engine there keeps the main core free for
// application work, at ~10% of the main core's area and power.
//
// The model exposes the two quantities the evaluation needs — how long a
// decision takes and what it costs in energy — for a decision workload
// measured in (main-core-equivalent) cycles.
type PartnerCore struct {
	// Main is the paired main core's current operating point.
	Main VFPoint
	// Energy is the main core's energy model (the partner derives from
	// it by the ratios below).
	Energy CoreEnergy
	// FreqRatio is partner clock / main clock (simplified pipeline, low
	// power circuits: slower).
	FreqRatio float64
	// PowerRatio is partner power / main power at equal voltage (§4.3:
	// "about 10% of the area and 10% of the power").
	PowerRatio float64
	// CPIRatio is the partner's cycles-per-instruction penalty from the
	// simplified pipeline, smaller caches and fewer functional units.
	CPIRatio float64

	// Counters is the paired main core's counter file (the partner has
	// direct access, §4.3).
	Counters *CounterFile
	// Events is the probe queue the partner drains.
	Events *EventQueue
}

// NewPartnerCore pairs a partner with a main core's observation state.
func NewPartnerCore(main VFPoint, energy CoreEnergy, counters *CounterFile, events *EventQueue) (*PartnerCore, error) {
	if counters == nil {
		return nil, fmt.Errorf("angstrom: partner core without counter access")
	}
	if err := energy.Validate(); err != nil {
		return nil, err
	}
	return &PartnerCore{
		Main:       main,
		Energy:     energy,
		FreqRatio:  0.2,
		PowerRatio: 0.1,
		CPIRatio:   1.5,
		Counters:   counters,
		Events:     events,
	}, nil
}

// DecisionCost is the time and energy of running a decision workload.
type DecisionCost struct {
	Seconds float64
	Joules  float64
}

// RunDecision models executing `instructions` of decision-engine code on
// the partner core at the main core's current voltage.
func (p *PartnerCore) RunDecision(instructions float64) DecisionCost {
	f := p.Main.FHz * p.FreqRatio
	cycles := instructions * p.CPIRatio
	seconds := cycles / f
	mainPowerW := p.Energy.DynamicPJPerCycle(p.Main.Volts)*1e-12*p.Main.FHz +
		p.Energy.LeakW(p.Main.Volts)
	return DecisionCost{
		Seconds: seconds,
		Joules:  mainPowerW * p.PowerRatio * seconds,
	}
}

// RunDecisionOnMain models the same workload executed on the main core —
// the baseline the partner core exists to beat. It costs application
// time (the main core cannot run the application meanwhile) and full
// main-core power.
func (p *PartnerCore) RunDecisionOnMain(instructions float64) DecisionCost {
	seconds := instructions / p.Main.FHz // CPI 1 on the big core
	mainPowerW := p.Energy.DynamicPJPerCycle(p.Main.Volts)*1e-12*p.Main.FHz +
		p.Energy.LeakW(p.Main.Volts)
	return DecisionCost{Seconds: seconds, Joules: mainPowerW * seconds}
}

// DrainEvents pops up to max pending probe events for processing,
// returning them oldest-first.
func (p *PartnerCore) DrainEvents(max int) []Event {
	if p.Events == nil {
		return nil
	}
	var out []Event
	for len(out) < max {
		e, ok := p.Events.Pop()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}

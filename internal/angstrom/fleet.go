package angstrom

import "fmt"

// This file lifts the single-chip model to a fleet of dies. A Fleet is
// a fixed set of SharedChips — each with its own tile ledger and
// contention ledger — plus the fleet-level view placement needs: for
// every chip, the current core-equivalent headroom and the predicted
// mem/NoC utilization *if a candidate demand were added*. The fleet
// itself takes no placement decisions; it only exposes deterministic
// ledger state so the serving layer's bin-packer and migrator stay pure
// functions of it (the determinism contract: parallel/serial
// transcripts and journal replays must agree bit for bit).

// Fleet is a fixed-size collection of identically parameterized chips.
type Fleet struct {
	chips []*SharedChip
}

// NewFleet builds n chips of `tiles` tiles each.
func NewFleet(p Params, tiles, n int) (*Fleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("angstrom: fleet of %d chips", n)
	}
	f := &Fleet{chips: make([]*SharedChip, n)}
	for i := range f.chips {
		sc, err := NewSharedChip(p, tiles)
		if err != nil {
			return nil, err
		}
		f.chips[i] = sc
	}
	return f, nil
}

// Chips reports the die count.
func (f *Fleet) Chips() int { return len(f.chips) }

// Chip returns die i.
func (f *Fleet) Chip(i int) *SharedChip { return f.chips[i] }

// ChipLoad is one die's ledger view for placement: tile headroom plus
// the shared-resource demand the last contention pass measured.
type ChipLoad struct {
	Chip            int
	Partitions      int
	Tiles           int
	CoreEquivalents float64 // core-equivalents in use (Cores × Share summed)
	// Demand and capacity of the two unpartitionable resources, as of
	// the last contention pass. Demand here is the *offered* aggregate
	// (share-scaled full-rate, not slowdown-scaled): on a saturated die
	// the delivered aggregate collapses as tenants are throttled, which
	// would make the worst die look like the emptiest. Capacity is
	// derated by any SetMemBandwidthScale in effect.
	MemDemandBps   float64
	MemCapacityBps float64
	FlitHopsPerSec float64
	NoCCapacity    float64
	// MemRho and NoCRho are offered demand over capacity, unclamped so
	// callers can rank dies past saturation (the delivered, clamped
	// utilizations live in the chip's Contention snapshot).
	MemRho float64
	NoCRho float64
}

// Free is the die's unreserved core-equivalents.
func (l ChipLoad) Free() float64 { return float64(l.Tiles) - l.CoreEquivalents }

// PredictedRho is the mem/NoC utilization the die would sit at if a
// candidate demand (share-scaled bytes/s and flit-hops/s) were added to
// the measured aggregate — the bin-packing signal. Values are not
// clamped to rhoCap so callers can rank dies past saturation.
func (l ChipLoad) PredictedRho(memBps, flitHops float64) (mem, noc float64) {
	if l.MemCapacityBps > 0 {
		mem = (l.MemDemandBps + memBps) / l.MemCapacityBps
	}
	if l.NoCCapacity > 0 {
		noc = (l.FlitHopsPerSec + flitHops) / l.NoCCapacity
	}
	return mem, noc
}

// Load snapshots die i's ledger view.
func (f *Fleet) Load(i int) ChipLoad {
	sc := f.chips[i]
	parts, used := sc.Usage()
	c := sc.Contention()
	memCap := c.MemCapacityBps
	// Before the first contention pass the snapshot carries the nominal
	// capacity; apply any derating so placement sees the truth.
	if c.Passes == 0 {
		memCap = sc.p.MemBandwidthBps * sc.MemBandwidthScale()
	}
	l := ChipLoad{
		Chip:            i,
		Partitions:      parts,
		Tiles:           sc.tiles,
		CoreEquivalents: used,
		MemDemandBps:    c.OfferedMemBps,
		MemCapacityBps:  memCap,
		FlitHopsPerSec:  c.OfferedFlitHops,
		NoCCapacity:     c.NoCCapacity,
	}
	if l.MemCapacityBps > 0 {
		l.MemRho = l.MemDemandBps / l.MemCapacityBps
	}
	if l.NoCCapacity > 0 {
		l.NoCRho = l.FlitHopsPerSec / l.NoCCapacity
	}
	return l
}

// Loads appends every die's ledger view to dst (reusing its capacity)
// and returns the extended slice, in die order.
func (f *Fleet) Loads(dst []ChipLoad) []ChipLoad {
	for i := range f.chips {
		dst = append(dst, f.Load(i))
	}
	return dst
}

// LedgerFaults sums accounting violations across every die.
func (f *Fleet) LedgerFaults() uint64 {
	var n uint64
	for _, sc := range f.chips {
		n += sc.LedgerFaults()
	}
	return n
}

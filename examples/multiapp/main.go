// Multiapp: the SEEC manager coordinating two applications with
// *different* goals competing for one pool of 64 cores — the scenario
// §2 uses to motivate the open model against closed resource managers
// (Bitirgen et al.), which can only optimize one fixed system objective.
//
// barnes scales nearly linearly; volrend saturates early. Halfway
// through, volrend raises its goal, and the manager reapportions without
// either application knowing about the other.
//
// Run: go run ./examples/multiapp
package main

import (
	"fmt"
	"log"

	"angstrom/internal/core"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

func main() {
	log.SetFlags(0)
	clock := sim.NewClock(0)
	mgr, err := core.NewManager(clock, 64)
	if err != nil {
		log.Fatal(err)
	}

	barnes, err := workload.ByName("barnes")
	if err != nil {
		log.Fatal(err)
	}
	volrend, err := workload.ByName("volrend")
	if err != nil {
		log.Fatal(err)
	}
	specs := []workload.Spec{barnes, volrend}
	bases := []float64{40, 60} // beats/s on one core
	mons := make([]*heartbeat.Monitor, 2)
	alloc := []int{1, 1}
	for i, spec := range specs {
		mons[i] = heartbeat.New(clock)
		scaling := spec.ParallelSpeedup
		if err := mgr.AddApp(spec.Name, mons[i], scaling); err != nil {
			log.Fatal(err)
		}
	}
	mons[0].SetPerformanceGoal(780, 820) // barnes wants 800 beats/s (~20 cores)
	mons[1].SetPerformanceGoal(290, 310) // volrend wants 300 (~6 cores)

	// beat advances the shared clock one period, each app beating at its
	// true rate for its current allocation.
	beat := func(period float64) {
		end := clock.Now() + period
		next := []float64{clock.Now(), clock.Now()}
		for i := range next {
			next[i] += 1 / (bases[i] * specs[i].ParallelSpeedup(alloc[i]))
		}
		for {
			idx := 0
			if next[1] < next[0] {
				idx = 1
			}
			if next[idx] > end {
				break
			}
			clock.AdvanceTo(next[idx])
			mons[idx].Beat()
			next[idx] += 1 / (bases[idx] * specs[idx].ParallelSpeedup(alloc[idx]))
		}
		clock.AdvanceTo(end)
	}

	fmt.Println("  t(s)  barnes-cores  barnes-rate  volrend-cores  volrend-rate")
	for t := 0; t < 40; t++ {
		if t == 20 {
			fmt.Println("--- volrend raises its goal to 900 beats/s (a user turned up quality) ---")
			mons[1].SetPerformanceGoal(880, 920)
		}
		allocs, err := mgr.Step()
		if err != nil {
			log.Fatal(err)
		}
		for i, a := range allocs {
			alloc[i] = a.Units
		}
		beat(1.0)
		if t%4 == 3 {
			fmt.Printf("%6d %13d %12.0f %14d %13.0f\n",
				t, alloc[0], mons[0].Observe().WindowRate,
				alloc[1], mons[1].Observe().WindowRate)
		}
	}
	fmt.Println("\nfinal goal status:")
	for i, spec := range specs {
		fmt.Printf("  %-8s met=%v (window rate %.0f)\n",
			spec.Name, mons[i].Check().AllMet(), mons[i].Observe().WindowRate)
	}
}

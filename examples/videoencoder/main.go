// Videoencoder: the paper's motivating example (§1) — "a video encoder
// should run at thirty frames per second" — on the Linux/x86 server
// model of §5.2. Every heartbeat is one encoded frame; SEEC holds
// 30 fps through a scene change that doubles the per-frame work, while
// the WattsUp meter shows the power the adaptation saves or spends.
//
// Run: go run ./examples/videoencoder
package main

import (
	"fmt"
	"log"

	"angstrom/internal/actuator"
	"angstrom/internal/core"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
	"angstrom/internal/xeon"
)

func main() {
	log.SetFlags(0)
	// An encoder profile: modestly parallel, strong phases (scene
	// complexity), one beat per frame.
	encoder := workload.Spec{
		Name:         "encoder",
		ParallelFrac: 0.97, SyncOverhead: 0.002,
		MemOpsPerInstr: 0.2,
		SharedWSKB:     512, PrivateWSKB: 1024,
		MissFloor: 0.01, ZipfS: 0.7,
		FlitsPerKiloInstr: 2,
		InstrPerBeat:      3e7,                         // ~30M instructions per frame
		PhaseAmp:          0.4, PhasePeriodBeats: 1800, // scene changes every ~30 s
		PhaseShapeKind: workload.PhaseSquare, NoiseStd: 0.08,
	}
	if err := encoder.Validate(); err != nil {
		log.Fatal(err)
	}

	p := xeon.DefaultParams()
	clock := sim.NewClock(0)
	srv, err := xeon.NewServer(p, xeon.Config{Cores: 1, PState: 0, Duty: p.DutyLevels}, clock)
	if err != nil {
		log.Fatal(err)
	}
	mon := heartbeat.New(clock, heartbeat.WithEnergyMeter(srv.Meter), heartbeat.WithWindow(31))
	srv.Attach(workload.NewInstance(encoder, 7), mon)
	mon.SetPerformanceGoal(29, 31) // 30 fps

	acts, err := srv.Actuators()
	if err != nil {
		log.Fatal(err)
	}
	space, err := actuator.NewSpace(acts...)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := core.New("encoder", clock, mon, space, core.Options{
		Pole: 0.4, KalmanQ: 1, KalmanR: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("  t(s)    fps   power(W)  cores  GHz   duty")
	for t := 0; t < 90; t++ {
		d, err := rt.Step()
		if err != nil {
			log.Fatal(err)
		}
		for _, sl := range d.Slices(1.0) {
			if err := space.Apply(sl.Cfg); err != nil {
				log.Fatal(err)
			}
			if _, err := srv.RunInterval(sl.Duration); err != nil {
				log.Fatal(err)
			}
		}
		if t%6 == 0 {
			cfg := srv.Config()
			fmt.Printf("%6d %6.1f %10.1f %6d %5.2f %5d/10\n",
				t, mon.Observe().WindowRate, srv.Meter.LastSample(),
				cfg.Cores, p.FreqsGHz[cfg.PState], cfg.Duty)
		}
	}
	fmt.Printf("\nmean wall power %.1f W (idle %.0f W); goal met at the end: %v\n",
		srv.Meter.EnergyJoules()/clock.Now(), p.IdleW, mon.Check().AllMet())
}

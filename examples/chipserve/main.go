// Chipserve demonstrates chip-backed serving: an accelerated angstromd
// daemon binds a fleet of applications to partitions of ONE shared
// Angstrom chip model and drives every app toward its heart-rate goal
// band by actuating real hardware knobs — core allocation, per-core L2
// capacity, and DVFS — under a shared power budget. No client beats:
// each partition emits its application's heartbeats as its modeled
// execution progresses, closing the paper's observe–decide–act loop
// entirely over hardware state.
//
// With -apps larger than -tiles the fleet oversubscribes the chip and
// the manager time-shares tiles (fractional allocations) instead of
// refusing enrollment.
//
// With -colocate the example instead demonstrates cross-partition
// contention: a bandwidth-heavy workload is run alone and then
// co-located with a twin on a scarce-memory chip — at identical
// configurations each tenant senses lower IPS than it did alone, and
// through the serving loop the manager provisions extra cores so both
// still converge into their goal bands.
//
// Run: go run ./examples/chipserve -apps 120 -tiles 256 -ticks 150
//
//	go run ./examples/chipserve -colocate
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"angstrom/internal/angstrom"
	"angstrom/internal/heartbeat"
	"angstrom/internal/server"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

var workloads = []string{"barnes", "ocean", "raytrace", "water", "volrend"}

func main() {
	log.SetFlags(0)
	apps := flag.Int("apps", 120, "applications to enroll on the shared chip")
	tiles := flag.Int("tiles", 256, "physical tiles of the shared chip")
	ticks := flag.Int("ticks", 150, "decision periods to run")
	accel := flag.Float64("accel", 0.5, "simulated seconds per decision period")
	budget := flag.Float64("power", 0, "chip power budget in watts (0 = unlimited)")
	frac := flag.Float64("goal-frac", 0.5, "goal as a fraction of each app's rate at its fair share")
	memBW := flag.Float64("mem-bw", -1, "off-chip bandwidth in GB/s (-1 = scenario default: 200 for the fleet, 24 for -colocate; 0 = chip model default)")
	colocate := flag.Bool("colocate", false, "run the bandwidth co-location scenario instead of the fleet")
	flag.Parse()

	if *colocate {
		if *memBW < 0 {
			*memBW = 24 // scarce: two 16-core oceans collide hard
		}
		runColocate(*tiles, *accel, *memBW)
		return
	}
	if *memBW < 0 {
		// A fleet of 120 apps outgrows the model's 2012-era 51.2 GB/s
		// bus; provision HBM-class bandwidth so the default scenario is
		// feasible while co-location still shows up in mem-rho.
		*memBW = 200
	}

	d, err := server.NewDaemon(server.Config{
		Cores:         *tiles,
		Period:        time.Hour, // ticked manually
		Accel:         *accel,
		Oversubscribe: true,
		Chip:          &server.ChipConfig{Tiles: *tiles, PowerBudgetW: *budget, MemBandwidthBps: *memBW * 1e9},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pose each app a goal it can reach at roughly its fair share of the
	// chip: frac x the model's rate at a fair-share-sized allocation.
	p := angstrom.DefaultParams()
	fairCores := *tiles / *apps
	cores := 1
	for cores*2 <= fairCores && cores < 8 {
		cores *= 2
	}
	// Oversubscribed fleets run time-shared: an app's reachable rate is
	// scaled by its fair time share of a single tile.
	shareFactor := 1.0
	if *apps > *tiles {
		shareFactor = float64(*tiles) / float64(*apps)
	}
	goals := make(map[string]float64, len(workloads))
	for _, wl := range workloads {
		spec, err := workload.ByName(wl)
		if err != nil {
			log.Fatal(err)
		}
		m, err := angstrom.Evaluate(p, spec, angstrom.Config{Cores: cores, CacheKB: 64, VF: 1})
		if err != nil {
			log.Fatal(err)
		}
		goals[wl] = m.HeartRate * *frac * shareFactor
	}

	log.Printf("enrolling %d apps on a %d-tile chip (fair share ~%d cores, goals at %.0f%%)...",
		*apps, *tiles, fairCores, *frac*100)
	for i := 0; i < *apps; i++ {
		wl := workloads[i%len(workloads)]
		target := goals[wl]
		err := d.Enroll(server.EnrollRequest{
			Name:     fmt.Sprintf("app-%04d", i),
			Workload: wl,
			// Span several decision periods so the windowed rate
			// averages over time-multiplexed slices.
			Window:  2048,
			MinRate: target * 0.9,
			MaxRate: target * 1.1,
		})
		if err != nil {
			log.Fatalf("enroll %d: %v", i, err)
		}
	}

	fmt.Println(" tick   decided   in-band   core-eq     chipW   mem-rho   noc-rho")
	every := *ticks / 10
	if every < 1 {
		every = 1
	}
	for i := 0; i < *ticks; i++ {
		d.Tick()
		if (i+1)%every == 0 {
			decided, met := fleet(d)
			chip, _ := d.ChipStatus()
			fmt.Printf("%5d  %7d/%d  %7d/%d  %8.1f  %8.2f  %8.3f  %8.3f\n",
				i+1, decided, *apps, met, *apps, chip.CoreEquivalents, chip.PowerW, chip.MemRho, chip.NoCRho)
		}
	}

	decided, met := fleet(d)
	chip, _ := d.ChipStatus()
	stats := d.Stats()
	fmt.Printf("\n=== chipserve: %d apps on one %d-tile chip ===\n", *apps, chip.Tiles)
	fmt.Printf("oda loop   %d ticks, %d decisions, %d beats (all chip-emitted)\n",
		stats.Ticks, stats.Decisions, stats.Beats)
	fmt.Printf("fleet      %d decided, %d in their goal band\n", decided, met)
	fmt.Printf("chip       %.1f/%d core-equivalents, %.2f W (budget %s)\n",
		chip.CoreEquivalents, chip.Tiles, chip.PowerW, budgetStr(chip.PowerBudgetW))
	fmt.Printf("contention %.2f/%.1f GB/s off-chip (rho %.3f), noc rho %.3f\n",
		chip.MemDemandBps/1e9, chip.MemBandwidthBps/1e9, chip.MemRho, chip.NoCRho)
	if chip.CoreEquivalents > float64(chip.Tiles)+1e-6 {
		log.Fatalf("FAIL: core ledger %.2f exceeds the %d-tile pool", chip.CoreEquivalents, chip.Tiles)
	}
	if met < *apps {
		for _, st := range d.List() {
			if !st.GoalMet {
				fmt.Printf("  out of band: %s rate %.1f vs [%.1f, %.1f] chip %+v\n",
					st.Name, st.Observation.WindowRate, st.Goal.MinRate, st.Goal.MaxRate, st.Chip)
			}
		}
		log.Printf("WARNING: %d/%d apps outside their goal band", *apps-met, *apps)
		os.Exit(1)
	}
	fmt.Println("all apps converged onto their goal bands through real knobs")
}

// runColocate demonstrates cross-partition contention end to end on a
// chip whose off-chip bandwidth is scarce enough that two copies of a
// bandwidth-heavy workload (ocean) genuinely collide.
//
// Part 1 pins the hardware: identical fixed partitions, alone and then
// co-located, so the degradation is visible at equal configurations —
// each tenant must sense lower IPS than it did alone.
//
// Part 2 closes the serving loop: the same pair served by an adaptive
// daemon, where the manager provisions extra cores for the contended
// throughput and both apps must converge into their goal bands anyway.
func runColocate(tiles int, accel, memBWGBps float64) {
	p := angstrom.DefaultParams()
	if memBWGBps > 0 {
		p.MemBandwidthBps = memBWGBps * 1e9
	}
	cfg := angstrom.Config{Cores: 16, CacheKB: 64, VF: 1}
	spec, err := workload.ByName("ocean")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== co-location on a %d-tile chip, %.0f GB/s off-chip ===\n\n", tiles, p.MemBandwidthBps/1e9)
	fmt.Printf("part 1: fixed partitions (%d cores, %dKB L2, VF%d each)\n", cfg.Cores, cfg.CacheKB, cfg.VF)

	solo := senseIPS(p, tiles, spec, cfg, 1)
	duo := senseIPS(p, tiles, spec, cfg, 2)
	fmt.Printf("  alone:      %.3g IPS\n", solo[0])
	for i, ips := range duo {
		drop := (1 - ips/solo[0]) * 100
		fmt.Printf("  co-located: %.3g IPS (tenant %d, -%.1f%%)\n", ips, i, drop)
		if ips >= solo[0] {
			log.Fatalf("FAIL: tenant %d senses %.3g IPS co-located, not below %.3g alone", i, ips, solo[0])
		}
	}

	fmt.Printf("\npart 2: adaptive serving (two apps, same goal band)\n")
	d, err := server.NewDaemon(server.Config{
		Cores: tiles, Period: time.Hour, Accel: accel,
		// The same bandwidth part 1 used, so both parts run one chip.
		Chip: &server.ChipConfig{Tiles: tiles, MemBandwidthBps: p.MemBandwidthBps},
	})
	if err != nil {
		log.Fatal(err)
	}
	m, err := angstrom.Evaluate(p, spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	target := m.HeartRate * 0.6
	for _, name := range []string{"hog-a", "hog-b"} {
		err := d.Enroll(server.EnrollRequest{
			Name: name, Workload: "ocean", Window: 2048,
			MinRate: target * 0.9, MaxRate: target * 1.1,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		d.Tick()
	}
	inBand, ticksChecked := 0, 100
	var slowSum float64
	for i := 0; i < ticksChecked; i++ {
		d.Tick()
		met := 0
		for _, st := range d.List() {
			if st.GoalMet {
				met++
			}
			slowSum += st.Chip.Slowdown / float64(2*ticksChecked)
		}
		if met == 2 {
			inBand++
		}
	}
	chip, _ := d.ChipStatus()
	for _, st := range d.List() {
		fmt.Printf("  %s: rate %.1f in [%.1f, %.1f], %d cores granted %d units, slowdown %.3f\n",
			st.Name, st.Observation.WindowRate, st.Goal.MinRate, st.Goal.MaxRate,
			st.Chip.Cores, st.Cores.Units, st.Chip.Slowdown)
	}
	fmt.Printf("  chip: %.2f/%.1f GB/s off-chip (rho %.3f), both in band %d/%d of the last ticks\n",
		chip.MemDemandBps/1e9, chip.MemBandwidthBps/1e9, chip.MemRho, inBand, ticksChecked)
	if inBand < ticksChecked*6/10 {
		log.Fatalf("FAIL: contended pair jointly in band only %d/%d ticks", inBand, ticksChecked)
	}
	if slowSum > 0.95 {
		log.Fatalf("FAIL: mean slowdown %.3f shows no real contention", slowSum)
	}
	fmt.Println("\nco-location costs are visible, and the fleet converges anyway")
}

// senseIPS builds a fresh scarce chip with n identical fixed tenants,
// runs one contention pass, and returns each tenant's sensed IPS.
func senseIPS(p angstrom.Params, tiles int, spec workload.Spec, cfg angstrom.Config, n int) []float64 {
	sc, err := angstrom.NewSharedChip(p, tiles)
	if err != nil {
		log.Fatal(err)
	}
	parts := make([]*angstrom.Partition, n)
	for i := range parts {
		mon := heartbeat.New(sim.NewClock(0))
		pt, err := sc.Acquire(fmt.Sprintf("hog-%d", i), workload.NewInstance(spec, uint64(i+1)), mon, cfg, 1, 0)
		if err != nil {
			log.Fatal(err)
		}
		parts[i] = pt
	}
	sc.UpdateContention()
	out := make([]float64, n)
	for i, pt := range parts {
		out[i] = pt.Sense().IPS
	}
	return out
}

func fleet(d *server.Daemon) (decided, met int) {
	for _, st := range d.List() {
		if st.Decision != nil {
			decided++
		}
		if st.GoalMet {
			met++
		}
	}
	return decided, met
}

func budgetStr(w float64) string {
	if w <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%.1f W", w)
}

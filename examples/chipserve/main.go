// Chipserve demonstrates chip-backed serving: an accelerated angstromd
// daemon binds a fleet of applications to partitions of ONE shared
// Angstrom chip model and drives every app toward its heart-rate goal
// band by actuating real hardware knobs — core allocation, per-core L2
// capacity, and DVFS — under a shared power budget. No client beats:
// each partition emits its application's heartbeats as its modeled
// execution progresses, closing the paper's observe–decide–act loop
// entirely over hardware state.
//
// With -apps larger than -tiles the fleet oversubscribes the chip and
// the manager time-shares tiles (fractional allocations) instead of
// refusing enrollment.
//
// Run: go run ./examples/chipserve -apps 120 -tiles 256 -ticks 150
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"angstrom/internal/angstrom"
	"angstrom/internal/server"
	"angstrom/internal/workload"
)

var workloads = []string{"barnes", "ocean", "raytrace", "water", "volrend"}

func main() {
	log.SetFlags(0)
	apps := flag.Int("apps", 120, "applications to enroll on the shared chip")
	tiles := flag.Int("tiles", 256, "physical tiles of the shared chip")
	ticks := flag.Int("ticks", 150, "decision periods to run")
	accel := flag.Float64("accel", 0.5, "simulated seconds per decision period")
	budget := flag.Float64("power", 0, "chip power budget in watts (0 = unlimited)")
	frac := flag.Float64("goal-frac", 0.5, "goal as a fraction of each app's rate at its fair share")
	flag.Parse()

	d, err := server.NewDaemon(server.Config{
		Cores:         *tiles,
		Period:        time.Hour, // ticked manually
		Accel:         *accel,
		Oversubscribe: true,
		Chip:          &server.ChipConfig{Tiles: *tiles, PowerBudgetW: *budget},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pose each app a goal it can reach at roughly its fair share of the
	// chip: frac x the model's rate at a fair-share-sized allocation.
	p := angstrom.DefaultParams()
	fairCores := *tiles / *apps
	cores := 1
	for cores*2 <= fairCores && cores < 8 {
		cores *= 2
	}
	// Oversubscribed fleets run time-shared: an app's reachable rate is
	// scaled by its fair time share of a single tile.
	shareFactor := 1.0
	if *apps > *tiles {
		shareFactor = float64(*tiles) / float64(*apps)
	}
	goals := make(map[string]float64, len(workloads))
	for _, wl := range workloads {
		spec, err := workload.ByName(wl)
		if err != nil {
			log.Fatal(err)
		}
		m, err := angstrom.Evaluate(p, spec, angstrom.Config{Cores: cores, CacheKB: 64, VF: 1})
		if err != nil {
			log.Fatal(err)
		}
		goals[wl] = m.HeartRate * *frac * shareFactor
	}

	log.Printf("enrolling %d apps on a %d-tile chip (fair share ~%d cores, goals at %.0f%%)...",
		*apps, *tiles, fairCores, *frac*100)
	for i := 0; i < *apps; i++ {
		wl := workloads[i%len(workloads)]
		target := goals[wl]
		err := d.Enroll(server.EnrollRequest{
			Name:     fmt.Sprintf("app-%04d", i),
			Workload: wl,
			// Span several decision periods so the windowed rate
			// averages over time-multiplexed slices.
			Window:  2048,
			MinRate: target * 0.9,
			MaxRate: target * 1.1,
		})
		if err != nil {
			log.Fatalf("enroll %d: %v", i, err)
		}
	}

	fmt.Println(" tick   decided   in-band   core-eq     chipW")
	every := *ticks / 10
	if every < 1 {
		every = 1
	}
	for i := 0; i < *ticks; i++ {
		d.Tick()
		if (i+1)%every == 0 {
			decided, met := fleet(d)
			chip, _ := d.ChipStatus()
			fmt.Printf("%5d  %7d/%d  %7d/%d  %8.1f  %8.2f\n",
				i+1, decided, *apps, met, *apps, chip.CoreEquivalents, chip.PowerW)
		}
	}

	decided, met := fleet(d)
	chip, _ := d.ChipStatus()
	stats := d.Stats()
	fmt.Printf("\n=== chipserve: %d apps on one %d-tile chip ===\n", *apps, chip.Tiles)
	fmt.Printf("oda loop   %d ticks, %d decisions, %d beats (all chip-emitted)\n",
		stats.Ticks, stats.Decisions, stats.Beats)
	fmt.Printf("fleet      %d decided, %d in their goal band\n", decided, met)
	fmt.Printf("chip       %.1f/%d core-equivalents, %.2f W (budget %s)\n",
		chip.CoreEquivalents, chip.Tiles, chip.PowerW, budgetStr(chip.PowerBudgetW))
	if chip.CoreEquivalents > float64(chip.Tiles)+1e-6 {
		log.Fatalf("FAIL: core ledger %.2f exceeds the %d-tile pool", chip.CoreEquivalents, chip.Tiles)
	}
	if met < *apps {
		for _, st := range d.List() {
			if !st.GoalMet {
				fmt.Printf("  out of band: %s rate %.1f vs [%.1f, %.1f] chip %+v\n",
					st.Name, st.Observation.WindowRate, st.Goal.MinRate, st.Goal.MaxRate, st.Chip)
			}
		}
		log.Printf("WARNING: %d/%d apps outside their goal band", *apps-met, *apps)
		os.Exit(1)
	}
	fmt.Println("all apps converged onto their goal bands through real knobs")
}

func fleet(d *server.Daemon) (decided, met int) {
	for _, st := range d.List() {
		if st.Decision != nil {
			decided++
		}
		if st.GoalMet {
			met++
		}
	}
	return decided, met
}

func budgetStr(w float64) string {
	if w <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%.1f W", w)
}

// X86server: one benchmark of the Figure-3 experiment, end to end, with
// all five §5.2 systems side by side — no adaptation, uncoordinated
// adaptation, SEEC, the static oracle and the dynamic oracle — printed
// as the paper's normalized bars.
//
// Run: go run ./examples/x86server [-bench raytrace]
package main

import (
	"flag"
	"fmt"
	"log"

	"angstrom/internal/experiment"
)

func main() {
	log.SetFlags(0)
	bench := flag.String("bench", "raytrace", "benchmark to run")
	flag.Parse()

	res, err := experiment.RunFig3(experiment.Fig3Options{DurationS: 60})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Benchmark != *bench {
			continue
		}
		fmt.Printf("%s on the R410 model (perf/Watt, normalized to the dynamic oracle):\n\n", row.Benchmark)
		bars := []struct {
			label string
			v     float64
		}{
			{"no adaptation", row.NoAdapt / row.DynamicOracle},
			{"uncoordinated", row.Uncoordinated / row.DynamicOracle},
			{"SEEC", row.SEEC / row.DynamicOracle},
			{"static oracle", row.StaticOracle / row.DynamicOracle},
			{"dynamic oracle", 1.0},
		}
		for _, b := range bars {
			n := int(b.v * 40)
			if n < 0 {
				n = 0
			}
			bar := make([]byte, n)
			for i := range bar {
				bar[i] = '#'
			}
			fmt.Printf("%-15s %5.3f %s\n", b.label, b.v, bar)
		}
		return
	}
	log.Fatalf("unknown benchmark %q", *bench)
}

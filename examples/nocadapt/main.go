// Nocadapt: the three NoC adaptations of §4.2.2 — express virtual
// channels (EVC), bandwidth-adaptive networks (BAN), and
// application-aware oblivious routing (AOR) — demonstrated on an 8×8
// mesh carrying a skewed traffic pattern. Each knob is enabled in turn
// and its effect on latency, energy and worst-link load printed.
//
// Run: go run ./examples/nocadapt
package main

import (
	"fmt"
	"log"

	"angstrom/internal/noc"
)

// pattern installs a column-convergence workload: nodes of row 0 send to
// distinct rows of the last column, plus background all-to-one traffic.
func pattern(m *noc.Mesh) error {
	for i := 1; i < 7; i++ {
		if err := m.SetFlow(i, 7*8+7-i*8, 0.18); err != nil { // (i,0) → (7, 7−i)… see below
			return err
		}
	}
	// A reverse trickle, to give BAN an asymmetry to exploit.
	if err := m.SetFlow(63, 0, 0.05); err != nil {
		return err
	}
	return nil
}

func report(label string, m *noc.Mesh) {
	fmt.Printf("%-28s avg latency %6.2f cycles   worst link %5.2f   energy 0→7 %5.1f pJ/flit\n",
		label, m.AvgFlowLatency(), m.MaxUtilization(), m.EnergyPJPerFlit(0, 7))
}

func main() {
	log.SetFlags(0)
	base := noc.DefaultConfig(8, 8)

	plain, err := noc.NewMesh(base)
	if err != nil {
		log.Fatal(err)
	}
	if err = pattern(plain); err != nil {
		log.Fatal(err)
	}
	report("baseline (XY, fixed links)", plain)

	evcCfg := base
	evcCfg.EVC = true
	evc, err := noc.NewMesh(evcCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err = pattern(evc); err != nil {
		log.Fatal(err)
	}
	report("+EVC (router bypass)", evc)

	banCfg := evcCfg
	banCfg.BAN = true
	ban, err := noc.NewMesh(banCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := pattern(ban); err != nil {
		log.Fatal(err)
	}
	report("+BAN (adaptive bandwidth)", ban)

	// AOR: recompute the software-exposed routing table for this flow
	// matrix (the online routing computation of §4.2.2).
	worst := ban.OptimizeAOR()
	report("+AOR (routing table)", ban)
	fmt.Printf("\nAOR rebalanced the routing table to worst-link load %.2f\n", worst)
}

// Loadgen drives the angstromd serving daemon with thousands of
// concurrent synthetic heartbeat streams — the serving-side counterpart
// of the paper's multi-application scenario (§3.3): every stream
// enrolls with its own performance goal, beats over HTTP in batches,
// and reads back the decisions the ODA loop makes for it while the
// manager water-fills the shared core pool.
//
// By default it spawns a daemon in-process on a loopback port; point
// -addr at a running angstromd to load a real deployment.
//
// At fleet scale the daemon shards its app directory and re-prices
// only what changed each tick, so one process sustains 10,000
// concurrent streams:
//
//	go run ./examples/loadgen -apps 10000 -rate 5 -batch 25 -duration 30s
//
// With -wire, beats travel over the binary beat wire protocol instead
// of HTTP/JSON: streams share a small pool of persistent connections
// (-wire-conns, default GOMAXPROCS), each app handshakes a conn-local
// handle, and batches go out as unacknowledged CRC-framed wire frames
// with periodic flush barriers. Enrollment and decision reads stay on
// the JSON API. This is the path for beat rates that outrun JSON:
//
//	go run ./examples/loadgen -apps 1000 -rate 1000 -batch 100 -wire
//
// Requests retry with capped exponential backoff + jitter, so the
// fleet rides through a daemon restart instead of counting errors.
// With -restart-after the spawned daemon demonstrates it: mid-run it
// is drained and replaced by a fresh one restored from -data-dir, and
// the streams keep beating against the recovered fleet:
//
//	go run ./examples/loadgen -apps 1000 -duration 20s -restart-after 8s
//
// Run: go run ./examples/loadgen -apps 1000 -duration 10s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"angstrom/internal/heartbeat"
	"angstrom/internal/server"
)

var workloads = []string{"barnes", "ocean", "raytrace", "water", "volrend"}

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "", "daemon base URL (empty: spawn one in-process)")
	apps := flag.Int("apps", 1000, "concurrent synthetic applications")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	rate := flag.Float64("rate", 20, "beats/s each application targets")
	batch := flag.Int("batch", 10, "beats per POST")
	cores := flag.Int("cores", 4096, "core pool of the spawned daemon")
	period := flag.Duration("period", 100*time.Millisecond, "decision period of the spawned daemon")
	oversub := flag.Bool("oversubscribe", true, "admit fleets larger than the core pool (time-sharing)")
	shards := flag.Int("shards", 0, "directory shards of the spawned daemon (0 = auto)")
	retries := flag.Int("retries", 5, "max retries per request on transient errors (backoff + jitter)")
	dataDir := flag.String("data-dir", "", "data directory of the spawned daemon (empty = volatile, or temp with -restart-after)")
	restartAfter := flag.Duration("restart-after", 0, "restart the spawned daemon after this long (restore from -data-dir)")
	wire := flag.Bool("wire", false, "stream beats over the binary wire protocol (enrollment stays JSON)")
	wireAddr := flag.String("wire-addr", "", "wire listener address (spawned daemon: auto; required with -addr and -wire)")
	wireConns := flag.Int("wire-conns", 0, "wire connections shared by the fleet (0 = GOMAXPROCS)")
	flag.Parse()

	if *wire && *restartAfter > 0 {
		// Wire connections fail-fast and do not reconnect; the restart
		// demo is a JSON-path feature.
		log.Fatal("-wire and -restart-after are mutually exclusive")
	}
	if *wire && *addr != "" && *wireAddr == "" {
		log.Fatal("-wire against an external -addr needs -wire-addr")
	}

	base := *addr
	wireTarget := *wireAddr
	if base == "" {
		if *restartAfter > 0 && *dataDir == "" {
			tmp, err := os.MkdirTemp("", "loadgen-journal-")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(tmp)
			*dataDir = tmp
		}
		cfg := server.Config{
			Cores:         *cores,
			Period:        *period,
			Oversubscribe: *oversub,
			Shards:        *shards,
			DataDir:       *dataDir,
		}
		spawn := func(listen string) (*server.Daemon, *http.Server, net.Listener) {
			d, err := server.NewDaemon(cfg)
			if err != nil {
				log.Fatal(err)
			}
			d.Start()
			ln, err := net.Listen("tcp", listen)
			if err != nil {
				log.Fatal(err)
			}
			srv := &http.Server{Handler: d.Handler()}
			go func() {
				if err := srv.Serve(ln); err != http.ErrServerClosed {
					log.Print(err)
				}
			}()
			return d, srv, ln
		}
		d, srv, ln := spawn("127.0.0.1:0")
		defer func() { _ = d.Close() }()
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		log.Printf("spawned angstromd on %s (cores=%d period=%s data-dir=%q)", base, *cores, *period, *dataDir)

		if *wire {
			wln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			ws := server.NewWireServer(d, wln)
			go func() {
				if err := ws.Serve(); err != nil {
					log.Print(err)
				}
			}()
			defer ws.Close()
			wireTarget = wln.Addr().String()
			log.Printf("binary beat wire protocol on %s", wireTarget)
		}

		if *restartAfter > 0 {
			// Mid-run restart: drain the daemon (final snapshot), drop the
			// listener, and bring up a fresh daemon restored from the data
			// directory on the same port. In-flight requests fail and ride
			// through on the client's retry/backoff path.
			time.AfterFunc(*restartAfter, func() {
				log.Printf("restarting daemon (drain + restore from %s)...", *dataDir)
				srv.Close()
				if err := d.Close(); err != nil {
					log.Printf("drain: %v", err)
				}
				d2, _, _ := spawn(ln.Addr().String())
				ri := d2.RecoveryInfo()
				log.Printf("restarted: %d apps restored (snapshot %d + %d journal records)",
					ri.Apps, ri.SnapshotSeq, ri.ReplayedRecords)
			})
		}
	}

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        *apps * 2,
			MaxIdleConnsPerHost: *apps * 2,
		},
		Timeout: 10 * time.Second,
	}

	// One pool of persistent wire connections shared by the whole fleet;
	// each app handshakes its own handle on its assigned connection.
	var wcs []*server.WireClient
	if *wire {
		nc := *wireConns
		if nc <= 0 {
			nc = runtime.GOMAXPROCS(0)
		}
		wcs = make([]*server.WireClient, nc)
		for i := range wcs {
			wc, err := server.DialWire(wireTarget)
			if err != nil {
				log.Fatal(err)
			}
			defer wc.Close()
			wcs[i] = wc
		}
		log.Printf("dialed %d wire connections", nc)
	}

	// ingested mirrors the daemon's own counter discipline: workers
	// accumulate into goroutine-local deltas and publish to this shared
	// counter at a threshold, instead of bouncing one hot atomic (or a
	// per-request accumulation race) across every stream on every batch.
	var (
		ingested heartbeat.Counter
		requests atomic.Uint64
		frames   atomic.Uint64
		errs     atomic.Uint64
		retried  atomic.Uint64
		latMu    sync.Mutex
		lats     []time.Duration
	)
	// stream is one worker's private accumulation state: a counter delta
	// plus 1-in-8 sampled request latencies, merged once at stream end.
	type stream struct {
		del  heartbeat.Delta
		lats []time.Duration
		reqs uint64
	}
	// post retries transport errors and 5xx responses (a restarting or
	// journal-degraded daemon) with capped exponential backoff plus full
	// jitter; 4xx client errors fail immediately.
	post := func(s *stream, path string, body any) error {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		backoff := 50 * time.Millisecond
		const maxBackoff = 2 * time.Second
		for attempt := 0; ; attempt++ {
			t0 := time.Now()
			resp, err := client.Post(base+path, "application/json", bytes.NewReader(buf))
			if err == nil {
				resp.Body.Close()
				if s.reqs%8 == 0 {
					s.lats = append(s.lats, time.Since(t0))
				}
				s.reqs++
				requests.Add(1)
				if resp.StatusCode < 300 {
					return nil
				}
				err = fmt.Errorf("%s: status %d", path, resp.StatusCode)
				if resp.StatusCode < 500 {
					return err
				}
			}
			if attempt >= *retries {
				return err
			}
			retried.Add(1)
			time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff))))
			if backoff < maxBackoff {
				backoff *= 2
			}
		}
	}

	// In wire mode a background flusher per connection publishes pending
	// counter deltas and keeps the server's totals fresh between the
	// unacknowledged beat frames.
	stopFlush := make(chan struct{})
	var flushWG sync.WaitGroup
	for _, wc := range wcs {
		flushWG.Add(1)
		go func(c *server.WireClient) {
			defer flushWG.Done()
			t := time.NewTicker(100 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-stopFlush:
					return
				case <-t.C:
					_, _ = c.Flush()
				}
			}
		}(wc)
	}

	log.Printf("enrolling %d applications...", *apps)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *apps; i++ {
		wg.Add(1)
		// Go 1.22 loop variables are per-iteration: capture i directly
		// instead of shadowing it with a parameter.
		go func() {
			defer wg.Done()
			s := &stream{del: heartbeat.Delta{C: &ingested}}
			defer func() {
				s.del.Flush()
				if len(s.lats) > 0 {
					latMu.Lock()
					lats = append(lats, s.lats...)
					latMu.Unlock()
				}
			}()
			name := fmt.Sprintf("app-%04d", i)
			goal := *rate
			// No window inflation: the daemon spreads each batch's
			// timestamps across the interval since the previous beat
			// (or honors client-supplied per-beat timestamps), so the
			// default window measures the true stream rate even when
			// it is smaller than a batch.
			req := server.EnrollRequest{
				Name:     name,
				Workload: workloads[i%len(workloads)],
				MinRate:  goal * 0.9,
				MaxRate:  goal * 1.1,
			}
			if err := post(s, "/v1/apps", req); err != nil {
				errs.Add(1)
				return
			}
			var wc *server.WireClient
			var handle uint32
			if *wire {
				wc = wcs[i%len(wcs)]
				h, err := wc.Hello(name)
				if err != nil {
					errs.Add(1)
					return
				}
				handle = h
			}
			// Desynchronize the fleet, then beat in batches until the
			// deadline.
			interval := time.Duration(float64(*batch) / *rate * float64(time.Second))
			time.Sleep(time.Duration(rand.Int63n(int64(interval) + 1)))
			for time.Now().Before(deadline) {
				if wc != nil {
					if err := wc.Beats(handle, *batch, 0); err != nil {
						// Wire errors are fail-fast: the connection is
						// poisoned for every stream sharing it, so stop
						// rather than hammer a dead conn.
						errs.Add(1)
						return
					}
					frames.Add(1)
					s.del.Add(uint64(*batch))
				} else if err := post(s, "/v1/apps/"+name+"/beats", server.BeatRequest{Count: *batch}); err != nil {
					errs.Add(1)
				} else {
					s.del.Add(uint64(*batch))
				}
				time.Sleep(interval)
			}
		}()
	}
	wg.Wait()

	// Final flush barriers: every unacknowledged wire frame is decoded
	// and counted by the server before we read the fleet state back.
	close(stopFlush)
	flushWG.Wait()
	var serverAcked uint64
	for _, wc := range wcs {
		total, err := wc.Flush()
		if err != nil {
			log.Printf("WARNING: final wire flush: %v", err)
			continue
		}
		serverAcked += total
	}

	// Read the fleet's end state back through the API.
	var stats server.StatsResponse
	if resp, err := client.Get(base + "/v1/stats"); err == nil {
		json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
	}
	var list []server.AppStatus
	if resp, err := client.Get(base + "/v1/apps"); err == nil {
		json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
	}
	decided, met := 0, 0
	for _, st := range list {
		if st.Decision != nil {
			decided++
		}
		if st.GoalMet {
			met++
		}
	}

	latMu.Lock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		idx := int(p * float64(len(lats)-1))
		return lats[idx]
	}
	p50, p99, max := pct(0.50), pct(0.99), pct(1.0)
	latMu.Unlock()

	elapsed := duration.Seconds()
	beats := ingested.Load()
	fmt.Printf("\n=== loadgen: %d apps for %s against %s ===\n", *apps, duration, base)
	fmt.Printf("ingested   %d beats (%.0f beats/s), %d requests (%.0f req/s), %d errors, %d retries\n",
		beats, float64(beats)/elapsed,
		requests.Load(), float64(requests.Load())/elapsed, errs.Load(), retried.Load())
	if *wire {
		fmt.Printf("wire       %d frames over %d conns, %d beats server-acked\n",
			frames.Load(), len(wcs), serverAcked)
	}
	fmt.Printf("latency    p50 %s  p99 %s  max %s\n", p50, p99, max)
	fmt.Printf("oda loop   %d ticks, %d decisions (%.0f decisions/s)\n",
		stats.Ticks, stats.Decisions, float64(stats.Decisions)/elapsed)
	inBand := 0.0
	if stats.Apps > 0 {
		inBand = 100 * float64(met) / float64(stats.Apps)
	}
	fmt.Printf("fleet      %d enrolled (%d shards), %d with decisions, %d meeting their goal band (%.1f%%)\n",
		stats.Apps, stats.Shards, decided, met, inBand)
	if *wire && serverAcked != beats {
		log.Printf("WARNING: server acked %d beats, client sent %d", serverAcked, beats)
	}
	if errs.Load() > 0 {
		log.Printf("WARNING: %d request errors", errs.Load())
	}
	if inBand < 90 {
		log.Printf("WARNING: only %.1f%% of the fleet converged in-band", inBand)
	}
}

// Coherence: the ARCc-style adaptive protocol of §4.2.2 choosing between
// directory-MSI and shared-NUCA as the workload's sharing pattern
// changes. Phase 1 is private-working-set heavy (directory wins); phase
// 2 streams a chip-sized shared set (NUCA wins). The adaptive protocol
// follows the workload across the switch.
//
// Run: go run ./examples/coherence
package main

import (
	"fmt"
	"log"

	"angstrom/internal/cache"
	"angstrom/internal/sim"
)

// rowNet is a 1-D placement: latency 3 + 2·hops.
type rowNet struct{}

func (rowNet) Hops(a, b int) int {
	if a > b {
		a, b = b, a
	}
	return b - a
}
func (n rowNet) LatencyCycles(a, b int) float64 { return 3 + 2*float64(n.Hops(a, b)) }

const tiles = 16

func newCaches() []*cache.Cache {
	out := make([]*cache.Cache, tiles)
	for i := range out {
		c, err := cache.New(64, 8, 64)
		if err != nil {
			log.Fatal(err)
		}
		out[i] = c
	}
	return out
}

func main() {
	log.SetFlags(0)
	dir, err := cache.NewDirectory(newCaches(), rowNet{}, 2, 100)
	if err != nil {
		log.Fatal(err)
	}
	nuca, err := cache.NewNUCA(newCaches(), rowNet{}, 2, 100)
	if err != nil {
		log.Fatal(err)
	}
	ad, err := cache.NewAdaptive(dir, nuca, 2048, 500)
	if err != nil {
		log.Fatal(err)
	}

	rng := sim.NewRNG(42)
	run := func(label string, accesses int, gen func() (int, uint64)) {
		cycles := 0.0
		for i := 0; i < accesses; i++ {
			core, line := gen()
			out := ad.Access(core, line, rng.Float64() < 0.3)
			cycles += out.Cycles
		}
		fmt.Printf("%-34s avg %6.2f cycles/access, active protocol: %s (switches so far: %d)\n",
			label, cycles/float64(accesses), ad.Active(), ad.Switches())
	}

	// Phase 1: hot private sets per core — locality the directory keeps
	// on-tile.
	run("phase 1: private working sets", 60000, func() (int, uint64) {
		core := rng.Intn(tiles)
		return core, uint64(core*100000 + rng.Intn(256))
	})
	// Phase 2: a 512 KB shared set that thrashes 64 KB private caches
	// but fits the 1 MB NUCA aggregate.
	run("phase 2: chip-wide shared streaming", 120000, func() (int, uint64) {
		return rng.Intn(tiles), uint64(rng.Intn(8192))
	})
	// Phase 3: back to private locality.
	run("phase 3: private working sets again", 120000, func() (int, uint64) {
		core := rng.Intn(tiles)
		return core, uint64(core*100000 + rng.Intn(256))
	})

	fmt.Println("\nsoftware override (the Angstrom exposure): pin NUCA regardless of measurements")
	if err := ad.ForceProtocol(1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("active protocol now:", ad.Active())
}

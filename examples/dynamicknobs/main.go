// Dynamicknobs: application-level actions (§3.2) — the "changing
// algorithms" class of adaptation from PetaBricks / Dynamic Knobs [3,16]
// — combined with hardware knobs under a power cap.
//
// A renderer exposes three algorithm variants with increasing speed and
// distortion. SEEC first meets the frame-rate goal exactly (preferring
// the exact algorithm); when the operator imposes a power cap, the
// runtime trades accuracy — within the application's declared bound —
// to keep the frame rate under the cap.
//
// Run: go run ./examples/dynamicknobs
package main

import (
	"fmt"
	"log"

	"angstrom/internal/actuator"
	"angstrom/internal/core"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
)

func main() {
	log.SetFlags(0)
	clock := sim.NewClock(0)
	mon := heartbeat.New(clock)
	mon.SetPerformanceGoal(29, 31)
	mon.SetAccuracyGoal(2.5) // distortion the user will tolerate

	var coreSetting, algoSetting int
	cores := &actuator.Actuator{
		Name: "cores",
		Settings: []actuator.Setting{
			{Label: "2", Effect: actuator.Effect{Speedup: 1, PowerX: 1, Distort: 1}},
			{Label: "4", Effect: actuator.Effect{Speedup: 1.9, PowerX: 2.1, Distort: 1}},
			{Label: "8", Effect: actuator.Effect{Speedup: 3.4, PowerX: 4.6, Distort: 1}},
		},
		Apply: func(i int) error { coreSetting = i; return nil },
		Scope: actuator.GlobalScope,
		Axes:  []actuator.Axis{actuator.Performance, actuator.Power},
	}
	algo := &actuator.Actuator{
		Name: "algorithm",
		Settings: []actuator.Setting{
			{Label: "exact", Effect: actuator.Effect{Speedup: 1, PowerX: 1, Distort: 1}},
			{Label: "fast", Effect: actuator.Effect{Speedup: 1.6, PowerX: 1, Distort: 2}},
			{Label: "sloppy", Effect: actuator.Effect{Speedup: 2.6, PowerX: 1, Distort: 4}},
		},
		Apply: func(i int) error { algoSetting = i; return nil },
		Scope: actuator.ApplicationScope,
		Axes:  []actuator.Axis{actuator.Performance, actuator.Accuracy},
	}
	space, err := actuator.NewSpace(cores, algo)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := core.New("renderer", clock, mon, space, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Respect the application's accuracy goal as a hard bound on the
	// action space.
	if err := rt.SetDistortionBound(2.5); err != nil {
		log.Fatal(err)
	}

	trueSpeedup := func() float64 {
		return []float64{1, 1.9, 3.4}[coreSetting] * []float64{1, 1.6, 2.6}[algoSetting]
	}
	distortion := func() float64 { return []float64{1, 2, 4}[algoSetting] }

	run := func(d core.Decision, period float64) {
		for _, sl := range d.Slices(period) {
			if err := space.Apply(sl.Cfg); err != nil {
				log.Fatal(err)
			}
			rate := 10 * trueSpeedup()
			end := clock.Now() + sl.Duration
			for clock.Now() < end {
				clock.Advance(1 / rate)
				mon.BeatWithAccuracy(distortion() - 1) // 0 = nominal
			}
		}
	}

	fmt.Println("  t   rate  algorithm  cores  predicted-power")
	for t := 0; t < 30; t++ {
		if t == 15 {
			fmt.Println("--- operator imposes a 2.2x power cap (thermal event) ---")
			if err := rt.SetPowerCap(2.2); err != nil {
				log.Fatal(err)
			}
		}
		d, err := rt.Step()
		if err != nil {
			log.Fatal(err)
		}
		run(d, 1.0)
		if t%3 == 2 {
			fmt.Printf("%3d %6.1f %10s %6s %10.2fx\n",
				t, d.Observed, algo.Settings[algoSetting].Label,
				cores.Settings[coreSetting].Label, d.PredictedPower)
		}
	}
	fmt.Printf("\nfinal: rate %.1f, algorithm %q, distortion %.1f (bound 2.5), goals met: %v\n",
		mon.Observe().WindowRate, algo.Settings[algoSetting].Label,
		mon.Observe().Distortion+1, mon.Check().AllMet())
}

// Quickstart: the smallest complete SEEC loop.
//
// An application declares a heart-rate goal through the Application
// Heartbeats API; two actuators (a "cores" knob and a "clock" knob, here
// simulated inline) register their settings and effects; the SEEC
// runtime closes the observe-decide-act loop and holds the goal at
// minimum predicted power.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"angstrom/internal/actuator"
	"angstrom/internal/core"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
)

func main() {
	log.SetFlags(0)
	clock := sim.NewClock(0)
	mon := heartbeat.New(clock)

	// The application's goal: 28-32 beats/s (think: ~30 fps).
	mon.SetPerformanceGoal(28, 32)

	// A toy platform: true heart rate = 10 beats/s × speedup(config).
	var cores, freq = 0, 0 // current settings
	coreKnob := &actuator.Actuator{
		Name: "cores",
		Settings: []actuator.Setting{
			{Label: "1", Effect: actuator.Effect{Speedup: 1, PowerX: 1, Distort: 1}},
			{Label: "2", Effect: actuator.Effect{Speedup: 2, PowerX: 2.2, Distort: 1}},
			{Label: "4", Effect: actuator.Effect{Speedup: 4, PowerX: 5, Distort: 1}},
		},
		Apply: func(i int) error { cores = i; return nil },
		Scope: actuator.GlobalScope,
		Axes:  []actuator.Axis{actuator.Performance, actuator.Power},
	}
	freqKnob := &actuator.Actuator{
		Name: "clock",
		Settings: []actuator.Setting{
			{Label: "slow", Effect: actuator.Effect{Speedup: 1, PowerX: 1, Distort: 1}},
			{Label: "fast", Effect: actuator.Effect{Speedup: 1.5, PowerX: 1.9, Distort: 1}},
		},
		Apply: func(i int) error { freq = i; return nil },
		Scope: actuator.GlobalScope,
		Axes:  []actuator.Axis{actuator.Performance, actuator.Power},
	}
	space, err := actuator.NewSpace(coreKnob, freqKnob)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := core.New("quickstart", clock, mon, space, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	trueSpeedup := func() float64 {
		s := []float64{1, 2, 4}[cores] * []float64{1, 1.5}[freq]
		return s
	}

	fmt.Println("  t   observed  demand   schedule")
	for step := 0; step < 20; step++ {
		d, err := rt.Step()
		if err != nil {
			log.Fatal(err)
		}
		// Act: execute the decision's slices over a 1 s period, the
		// application beating at its true (not declared) rate.
		for _, sl := range d.Slices(1.0) {
			if err := space.Apply(sl.Cfg); err != nil {
				log.Fatal(err)
			}
			rate := 10 * trueSpeedup()
			end := clock.Now() + sl.Duration
			for clock.Now() < end {
				clock.Advance(1 / rate)
				mon.Beat()
			}
		}
		fmt.Printf("%3d %9.2f %8.2f   %.0f%% of [%s %s], rest [%s %s]\n",
			step, d.Observed, d.TargetSpeedup, d.HiFrac*100,
			coreKnob.Settings[d.HiCfg[0]].Label, freqKnob.Settings[d.HiCfg[1]].Label,
			coreKnob.Settings[d.LoCfg[0]].Label, freqKnob.Settings[d.LoCfg[1]].Label)
	}
	obs := mon.Observe()
	status := mon.Check()
	fmt.Printf("\nfinal window rate %.2f beats/s, goal met: %v\n", obs.WindowRate, status.AllMet())
}

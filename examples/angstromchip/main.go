// Angstromchip: SEEC driving the Angstrom chip model's exposed hardware
// knobs (§4.2) — core allocation, L2 capacity, DVFS — for the barnes
// benchmark, with the chip's fine-grained sensors (§4.1) and a partner
// core (§4.3) doing the decision work.
//
// An event probe watches the L2 miss counter and queues records for the
// partner core, which also runs (and is charged for) the decision code.
//
// Run: go run ./examples/angstromchip
package main

import (
	"fmt"
	"log"

	"angstrom/internal/actuator"
	"angstrom/internal/angstrom"
	"angstrom/internal/core"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

func main() {
	log.SetFlags(0)
	p := angstrom.DefaultParams()
	clock := sim.NewClock(0)
	chip, err := angstrom.NewChip(p, angstrom.Config{Cores: 16, CacheKB: 64, VF: 0}, 256, clock)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := workload.ByName("barnes")
	if err != nil {
		log.Fatal(err)
	}
	mon := heartbeat.New(clock, heartbeat.WithEnergyMeter(chip.Energy), heartbeat.WithWindow(41))
	chip.Attach(workload.NewInstance(spec, 3), mon)

	// Probe: record whenever tile 0 crosses each 10M L2 misses.
	probe := &angstrom.Probe{
		Counter: angstrom.CtrL2Misses,
		Op:      angstrom.OpGE,
		Trigger: 10_000_000,
		Queue:   chip.Tiles[0].Queue,
	}
	if err = chip.Tiles[0].Probes.Attach(probe); err != nil {
		log.Fatal(err)
	}

	coreOpts := []int{1, 4, 16, 64, 256}
	cacheOpts := []int{32, 64, 128}
	maxRate, err := chip.MaxHeartRate(coreOpts, cacheOpts)
	if err != nil {
		log.Fatal(err)
	}
	target := maxRate / 2
	mon.SetPerformanceGoal(target*0.95, target*1.05)
	fmt.Printf("barnes on the Angstrom model: target %.0f beats/s\n", target)

	acts, err := chip.BuildActuators(coreOpts, cacheOpts)
	if err != nil {
		log.Fatal(err)
	}
	space, err := actuator.NewSpace(acts...)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := core.New("barnes", clock, mon, space, core.Options{
		Pole:    0.4,
		KalmanQ: (0.03 * target) * (0.03 * target),
		KalmanR: (0.02 * target) * (0.02 * target),
	})
	if err != nil {
		log.Fatal(err)
	}

	partner := chip.Tiles[0].Partner
	var decisionJ float64
	fmt.Println("  t(s)    rate   power(W)  tile0-temp  cfg (cores/KB/VF)")
	for t := 0; t < 60; t++ {
		d, err := rt.Step()
		if err != nil {
			log.Fatal(err)
		}
		// The decision itself runs on the partner core: ~50k
		// instructions of runtime code per invocation (§4.3).
		cost := partner.RunDecision(50_000)
		decisionJ += cost.Joules

		for _, sl := range d.Slices(1.0) {
			if err := space.Apply(sl.Cfg); err != nil {
				log.Fatal(err)
			}
			if _, err := chip.RunInterval(sl.Duration); err != nil {
				log.Fatal(err)
			}
		}
		if t%5 == 0 {
			m, _ := chip.Metrics()
			cfg := chip.Config()
			fmt.Printf("%6d %7.0f %10.3f %10.1f°C  %d/%d/VF%d\n",
				t, mon.Observe().WindowRate, m.PowerW,
				chip.Tiles[0].Thermal.ReadC(), cfg.Cores, cfg.CacheKB, cfg.VF)
		}
	}
	events := partner.DrainEvents(100)
	fmt.Printf("\npartner core: %d probe events drained, %.2f µJ total decision energy\n",
		len(events), decisionJ*1e6)
	onMain := partner.RunDecisionOnMain(50_000 * 60)
	fmt.Printf("same decisions on the main core would have cost %.2f µJ (%.1fx more)\n",
		onMain.Joules*1e6, onMain.Joules/decisionJ)
	fmt.Printf("goal met at the end: %v\n", mon.Check().AllMet())
}

# Angstrom/SEEC reproduction — build, verify, and benchmark targets.
#
#   make build   compile every package
#   make vet     static analysis
#   make lint    vet + angstromlint (the repo's contract analyzers)
#   make docs    fail if any internal package lacks a package comment
#   make test    tier-1 verification (build + lint + docs + scenarios + full test suite with -race)
#   make scenarios  the scenario torture tier: builtin scenarios vs
#                   oracle-regret budgets + byte-identical replay gates
#   make bench   run all benchmarks with allocation stats into bench.out
#   make bench-json  bench + record the BENCH_<date>.json trajectory file
#   make bench-compare  bench + fail on >20% regression of gated
#                       benchmarks vs OLD_BENCH (default: the latest
#                       BENCH_*.json snapshot)

GO ?= go
# Default baseline: the latest *committed* snapshot, so bench-json
# followed by bench-compare never compares a run against itself.
OLD_BENCH ?= $(lastword $(sort $(shell git ls-files 'BENCH_*.json')))

.PHONY: build test scenarios bench bench-json bench-compare vet lint docs clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# angstromlint enforces the repo's own contracts: deterministic scopes,
# zero-allocation hot paths, journal-before-mutate, and clock
# discipline (see ARCHITECTURE.md, "Static analysis & contracts").
lint: vet
	$(GO) run ./cmd/angstromlint ./...

# Godoc coverage gate: every internal package must carry a package
# comment (go list's .Doc is the synopsis go doc renders; empty means
# the package clause has no doc comment anywhere in the package).
docs:
	@missing=$$($(GO) list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./internal/... ./cmd/...); \
	if [ -n "$$missing" ]; then \
		echo "packages missing a package comment:"; echo "$$missing"; exit 1; \
	fi; \
	echo "package docs: all internal and cmd packages documented"

# The scenario tier: every builtin torture scenario (flash crowd, goal
# thrash, crash-restart, SLO classes, ...) must meet its oracle-regret
# budgets and replay byte-identically across daemon layouts, under -race.
scenarios:
	$(GO) test -race -run 'TestScenario' ./internal/scenario

# -shuffle=on randomizes test order within each package so inter-test
# ordering dependencies fail loudly instead of lurking.
test: build lint docs scenarios
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem . | tee bench.out

bench-json: bench
	$(GO) run ./cmd/benchjson bench.out

# The baseline is read from HEAD, not the working tree, so a bench-json
# run that rewrote today's snapshot cannot be compared against itself;
# an explicitly supplied OLD_BENCH that is not committed falls back to
# the file on disk.
bench-compare: bench
	$(if $(OLD_BENCH),,$(error bench-compare: no BENCH_*.json baseline; set OLD_BENCH=<snapshot>))
	@(git show HEAD:$(OLD_BENCH) 2>/dev/null || cat $(OLD_BENCH)) > .bench-baseline.json; \
	$(GO) run ./cmd/benchjson -compare .bench-baseline.json bench.out; st=$$?; \
	rm -f .bench-baseline.json; exit $$st

clean:
	rm -f bench.out .bench-baseline.json

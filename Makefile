# Angstrom/SEEC reproduction — build, verify, and benchmark targets.
#
#   make build   compile every package
#   make vet     static analysis
#   make docs    fail if any internal package lacks a package comment
#   make test    tier-1 verification (build + vet + docs + full test suite with -race)
#   make bench   run all benchmarks with allocation stats into bench.out
#   make bench-json  bench + record the BENCH_<date>.json trajectory file

GO ?= go

.PHONY: build test bench bench-json vet docs clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Godoc coverage gate: every internal package must carry a package
# comment (go list's .Doc is the synopsis go doc renders; empty means
# the package clause has no doc comment anywhere in the package).
docs:
	@missing=$$($(GO) list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./internal/... ./cmd/...); \
	if [ -n "$$missing" ]; then \
		echo "packages missing a package comment:"; echo "$$missing"; exit 1; \
	fi; \
	echo "package docs: all internal and cmd packages documented"

test: build vet docs
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem . | tee bench.out

bench-json: bench
	$(GO) run ./cmd/benchjson bench.out

clean:
	rm -f bench.out

# Angstrom/SEEC reproduction — build, verify, and benchmark targets.
#
#   make build   compile every package
#   make vet     static analysis
#   make test    tier-1 verification (build + vet + full test suite with -race)
#   make bench   run all benchmarks with allocation stats into bench.out
#   make bench-json  bench + record the BENCH_<date>.json trajectory file

GO ?= go

.PHONY: build test bench bench-json vet clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem . | tee bench.out

bench-json: bench
	$(GO) run ./cmd/benchjson bench.out

clean:
	rm -f bench.out

// Command scenario runs the deterministic torture scenarios from
// internal/scenario against a real daemon and prints the oracle-regret
// scorecard.
//
// Usage:
//
//	go run ./cmd/scenario                    # run every builtin
//	go run ./cmd/scenario -name flash-crowd  # one builtin
//	go run ./cmd/scenario -spec my.json      # a spec file
//	go run ./cmd/scenario -seed 42 -v        # reseed, per-app detail
//
// The exit status is the gate: nonzero when any run violates its
// spec's regret budgets. -shards/-workers select the daemon layout;
// the scorecard's transcript hash is layout-independent by contract,
// so two invocations with different layouts must print the same hash.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"angstrom/internal/scenario"
)

func main() {
	var (
		name    = flag.String("name", "", "run a single builtin scenario (default: all)")
		specs   = flag.String("spec", "", "run a JSON spec file instead of builtins")
		seed    = flag.Uint64("seed", 0, "override the spec seed (0 = keep)")
		shards  = flag.Int("shards", 0, "daemon shard count (0 = default)")
		workers = flag.Int("workers", 0, "daemon tick workers (0 = default)")
		verbose = flag.Bool("v", false, "print per-application scores")
		list    = flag.Bool("list", false, "list builtin scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range scenario.Builtins() {
			fmt.Printf("%-14s %4d ticks  %3d cores  %d classes  %d events\n",
				s.Name, s.Ticks, s.Cores, len(s.Classes), len(s.Events))
		}
		return
	}

	var runs []scenario.Spec
	switch {
	case *specs != "":
		data, err := os.ReadFile(*specs)
		if err != nil {
			fatal(err)
		}
		s, err := scenario.DecodeSpec(data)
		if err != nil {
			fatal(err)
		}
		runs = []scenario.Spec{s}
	case *name != "":
		s, err := scenario.ByName(*name)
		if err != nil {
			fatal(err)
		}
		runs = []scenario.Spec{s}
	default:
		runs = scenario.Builtins()
	}

	opts := scenario.Options{Shards: *shards, TickWorkers: *workers}
	failed := 0
	for _, s := range runs {
		if *seed != 0 {
			s.Seed = *seed
		}
		res, err := scenario.Run(s, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario %s: %v\n", s.Name, err)
			failed++
			continue
		}
		printCard(&res.Scorecard, *verbose)
		if err := res.Scorecard.CheckBudgets(s.Budgets); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %v\n", err)
			failed++
		} else {
			fmt.Printf("PASS %s\n", s.Name)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func printCard(sc *scenario.Scorecard, verbose bool) {
	fmt.Printf("=== %s (seed %d, %d ticks)\n", sc.Scenario, sc.Seed, sc.Ticks)
	fmt.Printf("    apps=%d peak=%d crashes=%d beats=%d decisions=%d\n",
		len(sc.Apps), sc.PeakApps, sc.Crashes, sc.Beats, sc.Decisions)
	fmt.Printf("    fleet regret=%.4f in-band=%.4f worst=%s (%.4f)\n",
		sc.FleetRegretFrac, sc.FleetInBandFrac, sc.WorstApp, sc.WorstRegretFrac)
	fmt.Printf("    transcript=%s\n", sc.TranscriptSHA256[:16])
	if !verbose {
		return
	}
	byClass := map[string][]int{}
	for i := range sc.Apps {
		byClass[sc.Apps[i].Class] = append(byClass[sc.Apps[i].Class], i)
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		var regret, meet, inBand, live float64
		for _, i := range byClass[c] {
			a := &sc.Apps[i]
			regret += a.RegretSeconds
			meet += a.OracleMeetSeconds
			inBand += a.InBandFrac * a.LiveSeconds
			live += a.LiveSeconds
		}
		rf := 0.0
		if meet > 0 {
			rf = regret / meet
		}
		ib := 0.0
		if live > 0 {
			ib = inBand / live
		}
		fmt.Printf("    class %-10s n=%3d regret=%.4f in-band=%.4f\n", c, len(byClass[c]), rf, ib)
	}
	for i := range sc.Apps {
		a := &sc.Apps[i]
		fmt.Printf("      %-16s live=%6.1fs in-band=%.3f regret=%.4f rate=%6.2f/%6.2f\n",
			a.Name, a.LiveSeconds, a.InBandFrac, a.RegretFrac, a.MeanRate, a.MeanTarget)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// Command figures regenerates the paper's evaluation artifacts: Figure 2
// (closed adaptive systems), Figure 3 (SEEC on Linux/x86), Figure 4
// (anticipated SEEC on Angstrom), and the §5.3 in-text numbers.
//
// Usage:
//
//	figures            # all figures (fig3's measured multiplier feeds fig4)
//	figures -fig 2     # one figure
//	figures -duration 240 -seed 7
//	figures -workers 1 # serial reference (same results, slower)
//
// Sweeps run on the parallel engine (one worker per GOMAXPROCS by
// default); per-configuration seeding makes the output identical for
// any -workers value.
package main

import (
	"flag"
	"fmt"
	"log"

	"angstrom/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	fig := flag.Int("fig", 0, "figure to regenerate (2, 3 or 4; 0 = all)")
	duration := flag.Float64("duration", 120, "measured seconds per Figure-3 run")
	seed := flag.Uint64("seed", 2012, "workload noise seed")
	accesses := flag.Int("accesses", 60000, "trace length per Figure-2 configuration")
	multiplier := flag.Float64("multiplier", 0, "SEEC/static multiplier for Figure 4 (0 = measure via Figure 3, or 1.15 with -fig 4)")
	workers := flag.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	if *fig == 0 || *fig == 2 {
		f2, err := experiment.RunFig2(experiment.Fig2Options{Accesses: *accesses, Seed: *seed, Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(f2)
	}
	mult := *multiplier
	if *fig == 0 || *fig == 3 {
		f3, err := experiment.RunFig3(experiment.Fig3Options{DurationS: *duration, Seed: *seed, Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(f3)
		if mult == 0 {
			mult = f3.SEECOverStatic
			fmt.Printf("(Figure 4 will use the measured SEEC/static multiplier %.3f)\n\n", mult)
		}
	}
	if *fig == 0 || *fig == 4 {
		f4, err := experiment.RunFig4Opts(experiment.Fig4Options{Multiplier: mult, Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(f4)
	}
}

// Angstromd is the SEEC serving daemon: a long-running
// observe–decide–act loop multiplexing many applications over an
// HTTP/JSON API. Applications enroll with a performance goal, POST
// heartbeats (batched) as they make progress, and read back the
// runtime's latest decision and water-filled core allocation.
//
//	angstromd -addr :8090 -cores 4096 -period 100ms
//
// Endpoints (see internal/server):
//
//	GET    /healthz
//	GET    /v1/stats
//	GET    /v1/apps
//	POST   /v1/apps               {"name","workload","window","min_rate","max_rate"}
//	GET    /v1/apps/{name}
//	DELETE /v1/apps/{name}
//	POST   /v1/apps/{name}/beats  {"count","distortion"}
//	PUT    /v1/apps/{name}/goal   {"min_rate","max_rate"}
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"angstrom/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	addr := flag.String("addr", ":8090", "listen address")
	cores := flag.Int("cores", 4096, "shared core pool arbitrated across applications")
	period := flag.Duration("period", 100*time.Millisecond, "decision period of the ODA loop")
	accel := flag.Float64("accel", 0, "simulated seconds per tick (0 = serve in real time)")
	window := flag.Int("window", 0, "default heartbeat window in beats (0 = library default)")
	flag.Parse()

	d, err := server.NewDaemon(server.Config{
		Cores:  *cores,
		Period: *period,
		Accel:  *accel,
		Window: *window,
	})
	if err != nil {
		log.Fatal(err)
	}
	d.Start()
	defer d.Stop()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           d.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("angstromd: serving on %s (cores=%d period=%s accel=%g)",
		*addr, *cores, *period, *accel)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	stats := d.Stats()
	log.Printf("angstromd: stopped after %d ticks, %d beats, %d decisions",
		stats.Ticks, stats.Beats, stats.Decisions)
}

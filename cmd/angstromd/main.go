// Angstromd is the SEEC serving daemon: a long-running
// observe–decide–act loop multiplexing many applications over an
// HTTP/JSON API. Applications enroll with a performance goal, POST
// heartbeats (batched) as they make progress, and read back the
// runtime's latest decision and water-filled core allocation.
//
//	angstromd -addr :8090 -cores 4096 -period 100ms
//
// With -chip, every enrolled application is instead bound to a
// partition of one shared Angstrom chip model: the decision engine
// actuates real hardware knobs (core allocation, L2 capacity, DVFS) and
// the partition emits the application's heartbeats as its modeled
// execution progresses. Partitions contend for the chip's off-chip
// bandwidth and mesh (-chip-mem-bw, -chip-noc-bw); the contention model
// degrades every partition's effective throughput when the fleet
// saturates either resource.
//
//	angstromd -chip -chip-tiles 256 -oversubscribe -chip-power 40 -chip-mem-bw 200
//
// With -chips N (N > 1), the chip model becomes a federation of N
// identical dies: enrollments are placed on the die where their
// predicted memory/NoC pressure fits best, and applications whose
// contention slowdown falls past -migrate-slowdown are migrated live to
// a less-loaded die. Per-die ledgers are served at /v1/chips.
//
//	angstromd -chip -chips 4 -chip-tiles 256 -oversubscribe -chip-mem-bw 200
//
// With -data-dir, the control plane is durable: every mutation is
// written ahead to a checksummed journal, periodic snapshots compact
// it, and a restart (or crash) restores the enrolled fleet — directory,
// tile ledger, goals — and resumes the recovered timeline. If the disk
// fails mid-run the daemon degrades to read-only serving (mutations
// 503) instead of silently losing durability; SIGTERM drains the HTTP
// server, finishes the in-flight tick, and flushes a final snapshot.
//
//	angstromd -data-dir /var/lib/angstromd -beat-timeout 30s
//
// With -beat-listen, the daemon additionally serves the binary beat
// wire protocol on a second TCP listener: length-prefixed CRC-framed
// batch frames (the journal's frame shape) multiplexed over persistent
// connections, for clients whose beat rate outruns HTTP/JSON. Control
// plane (enroll, goals, withdraw) stays on the JSON API; the wire path
// carries only beats. See docs/API.md "Binary beat wire protocol".
//
//	angstromd -addr :8090 -beat-listen :8091
//
// Endpoints (see docs/API.md and internal/server):
//
//	GET    /healthz
//	GET    /readyz
//	GET    /v1/stats
//	GET    /v1/chip               (404 unless -chip; single-die only)
//	GET    /v1/chips              (404 unless -chip)
//	GET    /v1/apps
//	POST   /v1/apps               {"name","workload","window","mode","min_rate","max_rate"}
//	GET    /v1/apps/{name}
//	DELETE /v1/apps/{name}
//	POST   /v1/apps/{name}/beats  {"count","distortion","timestamps"}
//	PUT    /v1/apps/{name}/goal   {"min_rate","max_rate"}
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"angstrom/internal/server"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	addr := flag.String("addr", ":8090", "listen address")
	cores := flag.Int("cores", 4096, "shared core pool arbitrated across applications")
	period := flag.Duration("period", 100*time.Millisecond, "decision period of the ODA loop")
	accel := flag.Float64("accel", 0, "simulated seconds per tick (0 = serve in real time)")
	window := flag.Int("window", 0, "default heartbeat window in beats (0 = library default)")
	oversub := flag.Bool("oversubscribe", false, "admit fleets larger than the core pool (time-sharing)")
	shards := flag.Int("shards", 0, "app-directory shard count, rounded to a power of two (0 = scaled from GOMAXPROCS)")
	tickWorkers := flag.Int("tick-workers", 0, "tick worker-pool size for the per-shard phases (0 = GOMAXPROCS)")
	chip := flag.Bool("chip", false, "bind enrolled apps to a shared Angstrom chip model (real knobs)")
	chips := flag.Int("chips", 0, "number of identical dies in the chip fleet (0/1 = single die; implies -chip)")
	chipTiles := flag.Int("chip-tiles", 0, "physical tiles of each die (0 = core pool size)")
	chipCache := flag.Int("chip-cache", 0, "largest per-core L2 option in KB (0 = 32/64/128 ladder)")
	chipPower := flag.Float64("chip-power", 0, "chip-wide power budget in watts (0 = unlimited)")
	chipMemBW := flag.Float64("chip-mem-bw", 0, "off-chip memory bandwidth in GB/s shared by all partitions (0 = model default)")
	chipNoCBW := flag.Float64("chip-noc-bw", 0, "mesh link bandwidth in flits/cycle for the contention model (0 = model default)")
	migrateSlowdown := flag.Float64("migrate-slowdown", 0, "contention slowdown below which an app migrates between dies (0 = 0.8 default, negative = never)")
	dataDir := flag.String("data-dir", "", "journal + snapshot directory for a durable control plane (empty = volatile)")
	snapEvery := flag.Duration("snapshot-interval", 0, "snapshot compaction interval (0 = 30s default, negative = journal-only)")
	beatTimeout := flag.Duration("beat-timeout", 0, "evict advisory apps silent for this many daemon-clock seconds (0 = never)")
	beatListen := flag.String("beat-listen", "", "listen address for the binary beat wire protocol (empty = JSON only)")
	flag.Parse()

	cfg := server.Config{
		Cores:         *cores,
		Period:        *period,
		Accel:         *accel,
		Window:        *window,
		Oversubscribe: *oversub,
		Shards:        *shards,
		TickWorkers:   *tickWorkers,
		DataDir:       *dataDir,
		SnapshotEvery: *snapEvery,
		BeatTimeout:   *beatTimeout,
	}
	if *chip || *chips > 1 {
		cc := &server.ChipConfig{
			Chips:           *chips,
			Tiles:           *chipTiles,
			PowerBudgetW:    *chipPower,
			MemBandwidthBps: *chipMemBW * 1e9,
			NoCFlitBW:       *chipNoCBW,
			MigrateSlowdown: *migrateSlowdown,
		}
		if *chipCache > 0 {
			// A three-rung ladder topping out at the requested size.
			for kb := *chipCache; kb >= 1 && len(cc.CacheOptionsKB) < 3; kb /= 2 {
				cc.CacheOptionsKB = append([]int{kb}, cc.CacheOptionsKB...)
			}
		}
		cfg.Chip = cc
	}
	d, err := server.NewDaemon(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		ri := d.RecoveryInfo()
		log.Printf("angstromd: restored %d apps from %s (snapshot %d + %d journal records, %d bytes torn tail repaired)",
			ri.Apps, *dataDir, ri.SnapshotSeq, ri.ReplayedRecords, ri.TruncatedBytes)
		if len(ri.DroppedSegments) > 0 || ri.BadRecords > 0 {
			log.Printf("angstromd: WARNING: recovery dropped %d segments, skipped %d undecodable records",
				len(ri.DroppedSegments), ri.BadRecords)
		}
	}
	d.Start()

	var ws *server.WireServer
	if *beatListen != "" {
		ln, err := net.Listen("tcp", *beatListen)
		if err != nil {
			log.Fatal(err)
		}
		ws = server.NewWireServer(d, ln)
		go func() {
			if err := ws.Serve(); err != nil {
				log.Printf("angstromd: wire: %v", err)
			}
		}()
		log.Printf("angstromd: binary beat wire protocol on %s", ln.Addr())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           d.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	if st, ok := d.ChipStatus(); ok {
		log.Printf("angstromd: chip-backed (%d tiles, budget %gW)", st.Tiles, st.PowerBudgetW)
	} else if sts := d.ChipStatuses(); len(sts) > 1 {
		log.Printf("angstromd: chip fleet (%d dies × %d tiles, budget %gW/die)",
			len(sts), sts[0].Tiles, sts[0].PowerBudgetW)
	}
	log.Printf("angstromd: serving on %s (cores=%d period=%s accel=%g oversubscribe=%v shards=%d)",
		*addr, *cores, *period, *accel, *oversub, d.Stats().Shards)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Drain: the HTTP server has stopped accepting. Close the wire
	// listener first so every connection's pending counter deltas land in
	// the daemon before the final tick and snapshot, then finish the
	// in-flight tick, flush a final snapshot, and close the journal.
	if ws != nil {
		if err := ws.Close(); err != nil {
			log.Printf("angstromd: wire close: %v", err)
		}
	}
	if err := d.Close(); err != nil {
		log.Printf("angstromd: drain: %v", err)
	}
	stats := d.Stats()
	log.Printf("angstromd: stopped after %d ticks, %d beats, %d decisions",
		stats.Ticks, stats.Beats, stats.Decisions)
}

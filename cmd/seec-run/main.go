// Command seec-run drives the SEEC runtime (or a baseline) on one
// benchmark on the Linux/x86 server model and prints a per-interval
// trace: the observe-decide-act loop made visible.
//
// Usage:
//
//	seec-run -bench barnes -mode seec
//	seec-run -bench ocean -mode uncoordinated -duration 60
package main

import (
	"flag"
	"fmt"
	"log"

	"angstrom/internal/actuator"
	"angstrom/internal/core"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
	"angstrom/internal/xeon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seec-run: ")
	bench := flag.String("bench", "barnes", "benchmark name")
	mode := flag.String("mode", "seec", "seec or uncoordinated")
	duration := flag.Float64("duration", 60, "simulated seconds")
	seed := flag.Uint64("seed", 2012, "workload seed")
	flag.Parse()

	spec, err := workload.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	p := xeon.DefaultParams()
	clock := sim.NewClock(0)
	srv, err := xeon.NewServer(p, xeon.Config{Cores: 1, PState: 0, Duty: p.DutyLevels}, clock)
	if err != nil {
		log.Fatal(err)
	}
	mon := heartbeat.New(clock, heartbeat.WithEnergyMeter(srv.Meter), heartbeat.WithWindow(41))
	srv.Attach(workload.NewInstance(spec, *seed), mon)

	target := p.MaxHeartRate(spec) / 2
	mon.SetPerformanceGoal(target*0.98, target*1.02)
	fmt.Printf("%s on the R410 model: target %.1f beats/s (half of max)\n", spec.Name, target)

	acts, err := srv.Actuators()
	if err != nil {
		log.Fatal(err)
	}
	space, err := actuator.NewSpace(acts...)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.Options{
		Pole:    0.4,
		KalmanQ: (0.03 * target) * (0.03 * target),
		KalmanR: (0.02 * target) * (0.02 * target),
	}

	steps := int(*duration)
	fmt.Printf("%5s %10s %10s %8s %10s %8s\n", "t(s)", "rate", "base-est", "speedup", "power(W)", "cfg")
	switch *mode {
	case "seec":
		rt, err := core.New(spec.Name, clock, mon, space, opts)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			d, err := rt.Step()
			if err != nil {
				log.Fatal(err)
			}
			for _, sl := range d.Slices(1.0) {
				if err := space.Apply(sl.Cfg); err != nil {
					log.Fatal(err)
				}
				if _, err := srv.RunInterval(sl.Duration); err != nil {
					log.Fatal(err)
				}
			}
			if i%5 == 0 {
				fmt.Printf("%5d %10.1f %10.1f %8.2f %10.1f %v\n",
					i, d.Observed, d.BaseEstimate, d.TargetSpeedup,
					srv.Meter.LastSample(), srv.Config())
			}
		}
	case "uncoordinated":
		u, err := core.NewUncoordinated(spec.Name, clock, mon, space, opts)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			cfg, ds, err := u.Step()
			if err != nil {
				log.Fatal(err)
			}
			if err := space.Apply(cfg); err != nil {
				log.Fatal(err)
			}
			if _, err := srv.RunInterval(1.0); err != nil {
				log.Fatal(err)
			}
			if i%5 == 0 {
				fmt.Printf("%5d %10.1f %10s %8s %10.1f %v\n",
					i, ds[0].Observed, "-", "-", srv.Meter.LastSample(), srv.Config())
			}
		}
	default:
		log.Fatalf("unknown mode %q (want seec or uncoordinated)", *mode)
	}
	obs := mon.Observe()
	fmt.Printf("final: window rate %.1f beats/s (target %.1f), mean power %.1f W\n",
		obs.WindowRate, target, srv.Meter.EnergyJoules()/clock.Now())
}

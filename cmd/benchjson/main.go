// Command benchjson turns `go test -bench` output into the repository's
// benchmark-trajectory snapshot: a BENCH_<date>.json file recording
// ns/op, B/op and allocs/op per benchmark, so successive PRs can be
// compared without re-running old commits.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson
//	go run ./cmd/benchjson -o BENCH_2026-07-28.json bench.out
//
// With no -o flag the output lands in BENCH_<today>.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the emitted file.
type Snapshot struct {
	Date       string   `json:"date"`
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Package    string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkFigure2-8   3   322103949 ns/op   70841608 B/op   144481 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so trajectories compare across
// machines; B/op and allocs/op are optional (absent without -benchmem).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(r io.Reader) (Snapshot, error) {
	snap := Snapshot{Date: time.Now().Format("2006-01-02")}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			snap.Package = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		res := Result{Name: strings.TrimPrefix(m[1], "Benchmark")}
		res.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		res.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		if m[5] != "" {
			res.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		snap.Benchmarks = append(snap.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return snap, err
	}
	if len(snap.Benchmarks) == 0 {
		return snap, fmt.Errorf("no benchmark lines found (pipe `go test -bench` output in)")
	}
	return snap, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output path (default BENCH_<date>.json)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	snap, err := parse(in)
	if err != nil {
		log.Fatal(err)
	}
	path := *out
	if path == "" {
		path = "BENCH_" + snap.Date + ".json"
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
}

// Command benchjson turns `go test -bench` output into the repository's
// benchmark-trajectory snapshot: a BENCH_<date>.json file recording
// ns/op, B/op and allocs/op per benchmark, so successive PRs can be
// compared without re-running old commits.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson
//	go run ./cmd/benchjson -o BENCH_2026-07-28.json bench.out
//	go run ./cmd/benchjson -compare BENCH_2026-07-28.json bench.out
//
// With no -o flag the output lands in BENCH_<today>.json.
//
// With -compare the new results are checked against an old snapshot
// instead of being written: every gated benchmark (-gates regexp)
// present in both runs must stay within -threshold (default 20%) of its
// old ns/op, and a gate that was allocation-free must stay so. Any
// regression prints a report and exits nonzero — `make bench-compare`
// wires this as the performance gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the emitted file.
type Snapshot struct {
	Date       string   `json:"date"`
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Package    string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkFigure2-8   3   322103949 ns/op   70841608 B/op   144481 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so trajectories compare across
// machines; B/op and allocs/op are optional (absent without -benchmem).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(r io.Reader) (Snapshot, error) {
	snap := Snapshot{Date: time.Now().Format("2006-01-02")}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			snap.Package = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		res := Result{Name: strings.TrimPrefix(m[1], "Benchmark")}
		res.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		res.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		if m[5] != "" {
			res.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		snap.Benchmarks = append(snap.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return snap, err
	}
	if len(snap.Benchmarks) == 0 {
		return snap, fmt.Errorf("no benchmark lines found (pipe `go test -bench` output in)")
	}
	return snap, nil
}

// defaultGates names the performance-gated benchmarks: the serving and
// simulator hot paths whose trajectories PRs must not regress (see
// BENCHMARKS.md). Subbenchmark names include the parent, e.g.
// DetailedAccess/directory.
const defaultGates = `^(PartitionSense$|DetailedAccess/|DaemonBeat$|DaemonChipTick|DaemonTick10k$|DaemonTick10kJournaled$|DaemonTickFederated$|Placement$|JournalAppend$|Recovery10k$|MonitorBeatWindow4096$|ChipEvaluate$|ScenarioFlashCrowd$|BeatIngestWire$|BeatIngestWireParallel$)`

// regression is one gated benchmark that got worse.
type regression struct {
	name   string
	reason string
}

// compareSnapshots checks the new results against the old snapshot:
// gated benchmarks present in both must stay within threshold of their
// old ns/op, and gates that were allocation-free must stay so. Gates
// only present on one side are reported but not failed (benchmarks come
// and go across PRs).
func compareSnapshots(old, new Snapshot, gates *regexp.Regexp, threshold float64) []regression {
	oldBy := make(map[string]Result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		oldBy[r.Name] = r
	}
	newBy := make(map[string]bool, len(new.Benchmarks))
	for _, r := range new.Benchmarks {
		newBy[r.Name] = true
	}
	for _, r := range old.Benchmarks {
		if gates.MatchString(r.Name) && !newBy[r.Name] {
			fmt.Printf("  gate %-36s MISSING from the new run (was %.1f ns/op)\n", r.Name, r.NsPerOp)
		}
	}
	// The allocation gate only means something when the baseline was
	// recorded with -benchmem: a snapshot without it reports 0 allocs
	// for everything, which is indistinguishable per-entry from a
	// genuinely allocation-free benchmark.
	oldHasMem := false
	for _, r := range old.Benchmarks {
		if r.BytesPerOp > 0 || r.AllocsPerOp > 0 {
			oldHasMem = true
			break
		}
	}
	var regs []regression
	for _, r := range new.Benchmarks {
		if !gates.MatchString(r.Name) {
			continue
		}
		prev, ok := oldBy[r.Name]
		if !ok {
			fmt.Printf("  new gate %-32s %12.1f ns/op (no baseline)\n", r.Name, r.NsPerOp)
			continue
		}
		delta := (r.NsPerOp - prev.NsPerOp) / prev.NsPerOp
		status := "ok"
		if delta > threshold {
			status = "REGRESSION"
			regs = append(regs, regression{r.Name, fmt.Sprintf("ns/op %+.1f%% (%.1f -> %.1f, threshold %+.0f%%)",
				delta*100, prev.NsPerOp, r.NsPerOp, threshold*100)})
		}
		if oldHasMem && prev.AllocsPerOp == 0 && r.AllocsPerOp > 0 {
			status = "REGRESSION"
			regs = append(regs, regression{r.Name, fmt.Sprintf("allocs/op 0 -> %d (allocation-free gate)", r.AllocsPerOp)})
		}
		fmt.Printf("  %-36s %12.1f -> %10.1f ns/op  %+6.1f%%  %s\n", r.Name, prev.NsPerOp, r.NsPerOp, delta*100, status)
	}
	return regs
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output path (default BENCH_<date>.json)")
	compare := flag.String("compare", "", "old snapshot to compare against instead of writing; exit nonzero on gated regression")
	gates := flag.String("gates", defaultGates, "regexp of benchmark names gated by -compare")
	threshold := flag.Float64("threshold", 0.20, "relative ns/op regression tolerated by -compare")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	snap, err := parse(in)
	if err != nil {
		log.Fatal(err)
	}

	if *compare != "" {
		gatesRe, gerr := regexp.Compile(*gates)
		if gerr != nil {
			log.Fatalf("bad -gates: %v", gerr)
		}
		data, rerr := os.ReadFile(*compare)
		if rerr != nil {
			log.Fatal(rerr)
		}
		var old Snapshot
		if uerr := json.Unmarshal(data, &old); uerr != nil {
			log.Fatalf("parse %s: %v", *compare, uerr)
		}
		fmt.Printf("comparing against %s (%s):\n", *compare, old.Date)
		regs := compareSnapshots(old, snap, gatesRe, *threshold)
		if len(regs) > 0 {
			for _, r := range regs {
				log.Printf("REGRESSION %s: %s", r.name, r.reason)
			}
			os.Exit(1)
		}
		fmt.Println("all gated benchmarks within threshold")
		return
	}

	path := *out
	if path == "" {
		path = "BENCH_" + snap.Date + ".json"
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
}

// Command angstrom-sim sweeps Angstrom chip configurations for one
// benchmark and prints the performance/power landscape — the raw data
// behind Figures 2 and 4.
//
// Usage:
//
//	angstrom-sim -bench barnes
//	angstrom-sim -bench ocean -detailed -accesses 100000
package main

import (
	"flag"
	"fmt"
	"log"

	"angstrom/internal/angstrom"
	"angstrom/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("angstrom-sim: ")
	bench := flag.String("bench", "barnes", "benchmark (barnes, ocean, raytrace, water, volrend)")
	detailed := flag.Bool("detailed", false, "use the trace-driven simulator instead of the interval model")
	accesses := flag.Int("accesses", 60000, "trace length per configuration (detailed mode)")
	maxCores := flag.Int("maxcores", 256, "largest core allocation to sweep")
	seed := flag.Uint64("seed", 2012, "trace seed (detailed mode)")
	flag.Parse()

	spec, err := workload.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	p := angstrom.DefaultParams()
	fmt.Printf("Angstrom sweep: %s (%s mode)\n", spec.Name, map[bool]string{true: "detailed", false: "interval"}[*detailed])
	fmt.Printf("%6s %8s %4s %12s %10s %8s %8s %8s\n",
		"cores", "cacheKB", "V/f", "beats/s", "power(W)", "CPI", "miss", "mem-rho")
	for cores := 1; cores <= *maxCores; cores *= 2 {
		for _, kb := range []int{16, 32, 64, 128, 256} {
			for vf := 0; vf < 2; vf++ {
				cfg := angstrom.Config{Cores: cores, CacheKB: kb, VF: vf}
				var m angstrom.Metrics
				if *detailed {
					m, err = angstrom.EvaluateDetailed(p, spec, cfg, *accesses, *seed)
				} else {
					m, err = angstrom.Evaluate(p, spec, cfg)
				}
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%6d %8d %4d %12.1f %10.4f %8.3f %8.4f %8.3f\n",
					cores, kb, vf, m.HeartRate, m.PowerW, m.CPI, m.MissRate, m.MemRho)
			}
		}
	}
}

// Command angstromlint is the repository's contract multichecker: it
// runs the internal/lint analyzers (determinism, hotpath,
// journalbefore, clockdiscipline, plus stdlib-quality shadow and
// nilness passes) over the packages matching its arguments and exits
// non-zero on any finding.
//
//	go run ./cmd/angstromlint ./...
//	go run ./cmd/angstromlint -only determinism,hotpath ./internal/...
//
// Contracts are declared in source with //angstrom:* directives and
// false positives waived with //lint:allow <analyzer> <reason>; see
// the internal/lint package documentation for the vocabulary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"angstrom/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: angstromlint [-only a,b] [-list] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers := lint.All
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "angstromlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "angstromlint: %v\n", err)
		os.Exit(2)
	}
	fset, pkgs, idx, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "angstromlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(fset, pkgs, idx, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "angstromlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "angstromlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
